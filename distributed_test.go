package celeste

// Differential and chaos tests for the TCP runtime: the in-process goroutine
// runtime is the reference implementation, and because every task is a pure
// function of the frozen stage input, its catalog is the byte-exact oracle
// for real multi-process runs. Worker processes are this test binary
// re-executed (TestMain intercepts the env var before any test runs); each
// worker regenerates the survey deterministically and proves it via the
// run-hash handshake before being served a single task.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"celeste/internal/core"
	"celeste/internal/imageio"
	"celeste/internal/vi"
)

const (
	workerAddrEnv    = "CELESTE_TEST_WORKER_ADDR"
	workerKillEnv    = "CELESTE_TEST_KILL_AFTER"
	workerDelayEnv   = "CELESTE_TEST_START_DELAY_MS"
	workerElasticEnv = "CELESTE_TEST_ELASTIC"
	workerLeaveEnv   = "CELESTE_TEST_LEAVE_AFTER"
	workerStartEnv   = "CELESTE_TEST_START_FILE"
	workerTouchEnv   = "CELESTE_TEST_TOUCH_FILE"
	workerRejoinEnv  = "CELESTE_TEST_REJOIN"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(workerAddrEnv); addr != "" {
		runTestWorker(addr)
		return
	}
	if os.Getenv(coordFDEnv) != "" {
		runTestCoordinator()
		return
	}
	os.Exit(m.Run())
}

// runTestWorker is the body of a re-exec'd worker process. It rebuilds the
// shared survey from the same fixed seeds the coordinating test uses and
// joins the run; CELESTE_TEST_KILL_AFTER=k makes it SIGKILL itself upon
// being assigned its (k+1)-th task — with the task in hand, mid-stage, no
// cleanup — to exercise the coordinator's requeue-on-death path for real.
func runTestWorker(addr string) {
	sv, init, _ := distInputs()
	opts := WorkerOptions{
		Threads:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           2 * time.Millisecond,
	}
	// The churn tests order the fleet by sentinel files instead of wall-clock
	// sleeps, so the schedule is identical on fast and loaded machines: a
	// worker with a touch file creates it upon its first task assignment —
	// the task is then in hand, so the run is provably mid-flight — and a
	// worker with a start file (below) holds its dial until the file exists.
	// The SIGKILL victim touches just before dying.
	kill, touch := -1, os.Getenv(workerTouchEnv)
	if ks := os.Getenv(workerKillEnv); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker: bad kill spec:", err)
			os.Exit(2)
		}
		kill = k
	}
	if kill >= 0 || touch != "" {
		opts.OnTask = func(task, completed int) {
			if touch != "" && completed == 0 {
				os.WriteFile(touch, nil, 0o644)
			}
			if kill >= 0 && completed >= kill {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable: SIGKILL cannot be handled
			}
		}
	}
	if f := os.Getenv(workerStartEnv); f != "" {
		// Hold the dial until an earlier wave's sentinel appears, so the
		// coordinator is guaranteed to still be serving (the toucher's task
		// is outstanding) when this worker dials.
		for {
			if _, err := os.Stat(f); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if ds := os.Getenv(workerDelayEnv); ds != "" {
		// The chaos tests hold the healthy workers back so the kill-marked
		// one is guaranteed to reach the scheduler while tasks remain.
		ms, err := strconv.Atoi(ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker: bad delay spec:", err)
			os.Exit(2)
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	if os.Getenv(workerElasticEnv) != "" {
		// The churn tests start this worker mid-run: it joins past the
		// connect grace with a fresh rank and steals its way into the pool.
		opts.Elastic = true
	}
	if rs := os.Getenv(workerRejoinEnv); rs != "" {
		// The failover and chaos tests need workers that outlive coordinator
		// incarnations and severed links: a per-outage re-dial budget on a
		// fast deterministic backoff, bounded by a give-up window so a test
		// gone wrong cannot leave immortal orphans.
		n, err := strconv.Atoi(rs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker: bad rejoin spec:", err)
			os.Exit(2)
		}
		opts.Rejoin = n
		opts.RejoinBackoff = Backoff{
			Base: 20 * time.Millisecond, Max: 250 * time.Millisecond,
			Seed: uint64(os.Getpid()),
		}
		opts.RejoinWindow = 2 * time.Minute
	}
	if ls := os.Getenv(workerLeaveEnv); ls != "" {
		k, err := strconv.Atoi(ls)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker: bad leave spec:", err)
			os.Exit(2)
		}
		opts.LeaveAfter = k
	}
	if err := RunWorker(addr, sv, init, opts); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// distInputs builds the same small fixed-seed survey the kill/resume tests
// use (resumeSurvey), but without a testing.T so the worker process can call
// it too. Both sides must generate identical bytes; the run-hash handshake
// enforces it.
func distInputs() (*Survey, []CatalogEntry, InferConfig) {
	cfg := DefaultSurveyConfig(41)
	cfg.Region = SkyBox{MaxRA: 0.014, MaxDec: 0.014}
	cfg.DeepRegion = SkyBox{}
	cfg.DeepRuns = 0
	cfg.Runs = 1
	cfg.FieldW, cfg.FieldH = 128, 128
	cfg.SourceDensity = 30000
	sv := GenerateSurvey(cfg)
	init := sv.NoisyCatalog(42)
	icfg := InferConfig{TargetWork: 1e5, Rounds: 1, MaxIter: 8, Seed: 9}
	return sv, init, icfg
}

// spawnTestWorkers re-execs this test binary as n worker processes against
// the coordinator at addr. killAfter maps a worker index to its self-SIGKILL
// trigger (completed-task count); absent workers run to completion.
func spawnTestWorkers(t *testing.T, addr string, n int, killAfter map[int]int) []*exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerAddrEnv+"="+addr)
		if k, ok := killAfter[i]; ok {
			cmd.Env = append(cmd.Env, workerKillEnv+"="+strconv.Itoa(k))
		} else if len(killAfter) > 0 {
			// Healthy workers in a kill test start late, so the victim
			// deterministically draws work before the pool drains (worker
			// startup is slow and noisy under -race).
			cmd.Env = append(cmd.Env, workerDelayEnv+"=1500")
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker %d: %v", i, err)
		}
		cmds = append(cmds, cmd)
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	})
	return cmds
}

// testWorkerSpec describes one churn-test worker process.
type testWorkerSpec struct {
	killAfter  int    // self-SIGKILL on the (killAfter+1)-th assignment; -1 disables
	leaveAfter int    // announce a graceful leave after this many tasks; 0 disables
	elastic    bool   // join mid-run via the elastic handshake
	delayMs    int    // startup delay before dialing
	startFile  string // hold the dial until this file exists
	touchFile  string // create this file just before the self-SIGKILL fires
}

// spawnTestWorkerSpecs re-execs this test binary as one worker per spec.
func spawnTestWorkerSpecs(t *testing.T, addr string, specs []testWorkerSpec) []*exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, 0, len(specs))
	for i, sp := range specs {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerAddrEnv+"="+addr)
		if sp.killAfter >= 0 {
			cmd.Env = append(cmd.Env, workerKillEnv+"="+strconv.Itoa(sp.killAfter))
		}
		if sp.leaveAfter > 0 {
			cmd.Env = append(cmd.Env, workerLeaveEnv+"="+strconv.Itoa(sp.leaveAfter))
		}
		if sp.elastic {
			cmd.Env = append(cmd.Env, workerElasticEnv+"=1")
		}
		if sp.delayMs > 0 {
			cmd.Env = append(cmd.Env, workerDelayEnv+"="+strconv.Itoa(sp.delayMs))
		}
		if sp.startFile != "" {
			cmd.Env = append(cmd.Env, workerStartEnv+"="+sp.startFile)
		}
		if sp.touchFile != "" {
			cmd.Env = append(cmd.Env, workerTouchEnv+"="+sp.touchFile)
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker %d: %v", i, err)
		}
		cmds = append(cmds, cmd)
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	})
	return cmds
}

// runTCP serves one run over a loopback listener to n real worker processes
// and returns the coordinator's result. Worker deaths are detected by
// connection errors (a SIGKILL closes the socket) or heartbeat silence.
func runTCP(t *testing.T, sv *Survey, init []CatalogEntry, cfg InferConfig,
	workers int, opts InferOptions, killAfter map[int]int) (*InferResult, []*exec.Cmd, error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Processes = workers
	opts.Transport = &Transport{
		Listener:     l,
		DeadAfter:    3 * time.Second,
		ConnectGrace: 60 * time.Second,
	}
	cmds := spawnTestWorkers(t, l.Addr().String(), workers, killAfter)
	res, err := InferWithOptions(sv, init, cfg, opts)
	for _, c := range cmds {
		c.Wait()
	}
	return res, cmds, err
}

// distHash computes the run fingerprint exactly as the runtime does for a
// given {threads, procs} shape — which RunHash deliberately excludes, so
// every shape of the same run must agree.
func distHash(sv *Survey, init []CatalogEntry, tasks []Task, cfg InferConfig, procs int) uint64 {
	return core.RunHash(sv, init, tasks, core.Config{
		Threads:   cfg.Threads,
		Rounds:    cfg.Rounds,
		Processes: procs,
		Seed:      cfg.Seed,
		Fit:       vi.Options{MaxIter: cfg.MaxIter},
	})
}

// TestDistributedDifferentialByteIdentical is the PR's acceptance criterion:
// the TCP runtime with real worker processes produces a catalog
// byte-identical to the in-process runtime, at multiple worker counts, with
// the same run hash throughout.
func TestDistributedDifferentialByteIdentical(t *testing.T) {
	sv, init, icfg := distInputs()
	if len(init) < 4 {
		t.Skip("fixed-seed survey too sparse")
	}

	base, err := InferWithOptions(sv, init, icfg, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.TasksProcessed < 3 {
		t.Fatalf("only %d tasks; the differential grid needs more", base.TasksProcessed)
	}
	baseHash := distHash(sv, init, base.Tasks, icfg, 4)

	for _, workers := range []int{2, 4} {
		res, cmds, err := runTCP(t, sv, init, icfg, workers, InferOptions{}, nil)
		if err != nil {
			t.Fatalf("spawn=%d: %v", workers, err)
		}
		entriesIdentical(t, base.Catalog, res.Catalog, fmt.Sprintf("spawn=%d", workers))
		if res.TasksProcessed != base.TasksProcessed {
			t.Errorf("spawn=%d: %d tasks processed, in-process run did %d",
				workers, res.TasksProcessed, base.TasksProcessed)
		}
		if h := distHash(sv, init, base.Tasks, icfg, workers); h != baseHash {
			t.Errorf("spawn=%d: run hash %016x differs from in-process %016x", workers, h, baseHash)
		}
		for i, c := range cmds {
			if !c.ProcessState.Success() {
				t.Errorf("spawn=%d: worker %d exited %v", workers, i, c.ProcessState)
			}
		}
	}
}

// TestDistributedWorkerKillRecovers SIGKILLs one worker process the moment
// it is assigned its first task: the coordinator must detect the death,
// requeue the in-flight task onto the survivors, and still produce the
// byte-identical catalog — the paper's Section IV-B recovery story executed
// with a real process death on a real wire.
func TestDistributedWorkerKillRecovers(t *testing.T) {
	sv, init, icfg := distInputs()
	if len(init) < 4 {
		t.Skip("fixed-seed survey too sparse")
	}
	base := Infer(sv, init, icfg)

	res, _, err := runTCP(t, sv, init, icfg, 3, InferOptions{}, map[int]int{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRanks != 1 {
		t.Errorf("FailedRanks = %d, want 1", res.FailedRanks)
	}
	if res.RequeuedTasks == 0 {
		t.Error("a worker died with a task in hand but nothing was requeued")
	}
	entriesIdentical(t, base.Catalog, res.Catalog, "SIGKILLed worker")
}

// TestDistributedKillResumeDifferentWorkerCount kills a checkpointing TCP
// run partway (the checkpoint hook aborts, standing in for the coordinator
// dying right after its last durable checkpoint), then resumes the persisted
// checkpoint with a different number of worker processes. The resumed run
// must finish to the byte-identical catalog with cumulative task accounting.
func TestDistributedKillResumeDifferentWorkerCount(t *testing.T) {
	sv, init, icfg := distInputs()
	if len(init) < 4 {
		t.Skip("fixed-seed survey too sparse")
	}
	base := Infer(sv, init, icfg)
	total := base.TasksProcessed
	kill := total / 2
	if kill < 1 {
		kill = 1
	}

	var wire []byte
	n := 0
	_, _, err := runTCP(t, sv, init, icfg, 2, InferOptions{
		CheckpointEvery: 1,
		OnCheckpoint: func(ck *Checkpoint) error {
			n++
			var buf bytes.Buffer
			if werr := imageio.WriteCheckpoint(&buf, ck); werr != nil {
				return werr
			}
			wire = buf.Bytes() // latest durable checkpoint
			if n == kill {
				return errors.New("injected coordinator kill")
			}
			return nil
		},
	}, nil)
	if !errors.Is(err, ErrRunAborted) {
		t.Fatalf("kill@%d: got %v, want ErrRunAborted", kill, err)
	}

	ck, err := imageio.ReadCheckpoint(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("reloading checkpoint: %v", err)
	}
	res, _, err := runTCP(t, sv, init, icfg, 3, InferOptions{Resume: ck}, nil)
	if err != nil {
		t.Fatalf("resume at 3 workers: %v", err)
	}
	entriesIdentical(t, base.Catalog, res.Catalog, "kill/resume at a different worker count")
	if res.TasksProcessed != total {
		t.Errorf("resumed run reports %d cumulative tasks, want %d", res.TasksProcessed, total)
	}
}

// runTCPChurn serves one run to a churn fleet: the non-elastic specs form
// the static complement the coordinator expects, elastic specs join mid-run
// on top of it.
func runTCPChurn(t *testing.T, sv *Survey, init []CatalogEntry, cfg InferConfig,
	opts InferOptions, specs []testWorkerSpec) (*InferResult, []*exec.Cmd, error) {
	t.Helper()
	static := 0
	for _, sp := range specs {
		if !sp.elastic {
			static++
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Processes = static
	opts.Transport = &Transport{
		Listener:     l,
		DeadAfter:    3 * time.Second,
		ConnectGrace: 60 * time.Second,
	}
	cmds := spawnTestWorkerSpecs(t, l.Addr().String(), specs)
	res, err := InferWithOptions(sv, init, cfg, opts)
	for _, c := range cmds {
		c.Wait()
	}
	return res, cmds, err
}

// TestChurnElasticJoinByteIdentical is the elastic tentpole's acceptance
// test: mid-run an elastic worker joins (admitted after the static
// handshake, with a fresh rank past the complement) while a static worker
// is SIGKILLed with a task in hand — and the catalog is still byte-identical
// to the single-process reference, with the same run hash. At spawn=4 a
// third worker departs gracefully after its first task, which must count as
// a leave, not a failure.
func TestChurnElasticJoinByteIdentical(t *testing.T) {
	sv, init, icfg := distInputs()
	if len(init) < 4 {
		t.Skip("fixed-seed survey too sparse")
	}
	base, err := InferWithOptions(sv, init, icfg, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.TasksProcessed < 3 {
		t.Fatalf("only %d tasks; the churn grid needs more", base.TasksProcessed)
	}
	baseHash := distHash(sv, init, base.Tasks, icfg, 1)

	for _, workers := range []int{2, 4} {
		// The fleet dials in three sentinel-ordered waves, so the schedule
		// is deterministic on any machine speed. Wave 1: worker 0, killed on
		// its first assignment, touching `died` just before the SIGKILL.
		// Wave 2, gated on `died`: the elastic joiner (and, at 4 workers,
		// the leaver, which departs after one completed task) — the victim's
		// task is still outstanding, so the coordinator is provably mid-run
		// when the join handshake arrives, and with at least three tasks in
		// the run the leaver is guaranteed an assignment before the pool
		// drains. Wave 3, gated on wave 2's first assignment: the plain
		// survivors, which must dial a live coordinator too (the wave-2
		// task is in hand when `working` appears).
		dir := t.TempDir()
		died := filepath.Join(dir, "victim-died")
		working := filepath.Join(dir, "wave2-working")
		specs := []testWorkerSpec{{killAfter: 0, touchFile: died}}
		for i := 1; i < workers; i++ {
			sp := testWorkerSpec{killAfter: -1, startFile: working}
			if workers == 4 && i == 1 {
				sp.leaveAfter = 1
				sp.startFile = died
				sp.touchFile = working
			}
			specs = append(specs, sp)
		}
		specs = append(specs, testWorkerSpec{killAfter: -1, elastic: true, startFile: died, touchFile: working})

		res, cmds, err := runTCPChurn(t, sv, init, icfg, InferOptions{}, specs)
		if err != nil {
			t.Fatalf("spawn=%d: %v", workers, err)
		}
		label := fmt.Sprintf("churn spawn=%d", workers)
		entriesIdentical(t, base.Catalog, res.Catalog, label)
		if res.TasksProcessed != base.TasksProcessed {
			t.Errorf("%s: %d tasks processed, in-process run did %d",
				label, res.TasksProcessed, base.TasksProcessed)
		}
		if h := distHash(sv, init, base.Tasks, icfg, workers); h != baseHash {
			t.Errorf("%s: run hash %016x differs from single-process %016x", label, h, baseHash)
		}
		if res.FailedRanks != 1 {
			t.Errorf("%s: FailedRanks = %d, want exactly the SIGKILLed worker", label, res.FailedRanks)
		}
		if res.JoinedRanks != 1 {
			t.Errorf("%s: JoinedRanks = %d, want the one elastic joiner", label, res.JoinedRanks)
		}
		if res.RequeuedTasks == 0 {
			t.Errorf("%s: the victim died with a task in hand but nothing was requeued", label)
		}
		if workers == 4 && res.LeftRanks != 1 {
			t.Errorf("%s: LeftRanks = %d, want the one graceful leaver", label, res.LeftRanks)
		}
		for i, c := range cmds {
			victim := i == 0
			if victim == c.ProcessState.Success() {
				t.Errorf("%s: worker %d (victim=%v) exited %v", label, i, victim, c.ProcessState)
			}
		}
	}
}
