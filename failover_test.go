package celeste

// Coordinator-failover end-to-end tests: the coordinator itself is SIGKILLed
// at durable checkpoint boundaries and restarted by a supervision loop, while
// the worker fleet — forked once — re-enrolls with every incarnation through
// its rejoin budget. The supervisor never holds run state; the listening
// socket lives in the test process and each coordinator incarnation inherits
// it (fd 3), so the address survives the crash and worker dials issued while
// no coordinator is alive queue in the socket backlog. The acceptance bar is
// the repo's usual one: the final catalog file is byte-identical to a
// crash-free run's.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"celeste/internal/core"
	"celeste/internal/imageio"
)

const (
	coordFDEnv    = "CELESTE_TEST_COORD_FD"
	coordCkptEnv  = "CELESTE_TEST_COORD_CKPT"
	coordOutEnv   = "CELESTE_TEST_COORD_OUT"
	coordProcsEnv = "CELESTE_TEST_COORD_PROCS"
	coordKillEnv  = "CELESTE_TEST_COORD_KILL"
)

// runTestCoordinator is the body of a re-exec'd coordinator incarnation. It
// serves the shared fixed-seed run on the listener inherited from the
// supervising test, resuming from the checkpoint file if one exists, and —
// when CELESTE_TEST_COORD_KILL=k is set — SIGKILLs itself immediately after
// its k-th checkpoint is durably on disk: the exact "crashed at a checkpoint
// boundary" case. A surviving incarnation writes the final catalog.
func runTestCoordinator() {
	fail := func(code int, args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"coordinator:"}, args...)...)
		os.Exit(code)
	}
	fd, err := strconv.Atoi(os.Getenv(coordFDEnv))
	if err != nil {
		fail(2, "bad fd:", err)
	}
	f := os.NewFile(uintptr(fd), "coordinator-listener")
	l, err := net.FileListener(f)
	f.Close()
	if err != nil {
		fail(2, "inheriting listener:", err)
	}
	procs, err := strconv.Atoi(os.Getenv(coordProcsEnv))
	if err != nil {
		fail(2, "bad procs:", err)
	}
	ckPath, outPath := os.Getenv(coordCkptEnv), os.Getenv(coordOutEnv)
	killAt := 0
	if ks := os.Getenv(coordKillEnv); ks != "" {
		if killAt, err = strconv.Atoi(ks); err != nil {
			fail(2, "bad kill spec:", err)
		}
	}

	sv, init, icfg := distInputs()
	icfg.Processes = procs
	opts := InferOptions{
		CheckpointEvery: 1,
		Transport: &Transport{
			Listener:     l,
			DeadAfter:    3 * time.Second,
			ConnectGrace: 60 * time.Second,
		},
	}
	saved := 0
	opts.OnCheckpoint = func(ck *Checkpoint) error {
		if err := imageio.SaveCheckpoint(ckPath, ck); err != nil {
			return err
		}
		saved++
		if killAt > 0 && saved >= killAt {
			// SaveCheckpoint is atomic (tmp + rename + dir sync), so the
			// state dying here is exactly what the next incarnation resumes.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL cannot be handled
		}
		return nil
	}
	if ck, err := imageio.LoadCheckpoint(ckPath); err == nil {
		opts.Resume = ck
	} else if !os.IsNotExist(err) {
		fail(2, "loading checkpoint:", err)
	}
	res, err := InferWithOptions(sv, init, icfg, opts)
	if err != nil {
		fail(1, err)
	}
	if err := imageio.WriteCatalog(outPath, res.Catalog); err != nil {
		fail(2, err)
	}
	os.Exit(0)
}

// superviseTCPRun drives one supervised run to completion: a worker fleet
// forked once with a rejoin budget, plus core.Supervise restarting
// coordinator incarnations that die to a signal. killSchedule[i] is the
// checkpoint count at which incarnation i SIGKILLs itself; the incarnation
// past the schedule runs to completion. Returns the final catalog path.
func superviseTCPRun(t *testing.T, workers int, killSchedule []int) string {
	t.Helper()
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.celk")
	outPath := filepath.Join(dir, "catalog.jsonl")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lf, err := l.(*net.TCPListener).File()
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()

	cmds := make([]*exec.Cmd, 0, workers)
	for i := 0; i < workers; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			workerAddrEnv+"="+l.Addr().String(),
			workerRejoinEnv+"=100000")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker %d: %v", i, err)
		}
		cmds = append(cmds, cmd)
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	})

	incarnations := 0
	err = core.Supervise(func(inc int) error {
		incarnations++
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			coordFDEnv+"=3",
			coordCkptEnv+"="+ckPath,
			coordOutEnv+"="+outPath,
			coordProcsEnv+"="+strconv.Itoa(workers))
		if inc < len(killSchedule) {
			cmd.Env = append(cmd.Env, coordKillEnv+"="+strconv.Itoa(killSchedule[inc]))
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{lf}
		if err := cmd.Start(); err != nil {
			return err
		}
		return cmd.Wait()
	}, core.SuperviseOptions{
		MaxRestarts: len(killSchedule) + 2,
		Backoff:     core.Backoff{Base: 50 * time.Millisecond, Jitter: -1},
		Permanent: func(err error) bool {
			// Only a signal death is a crash worth restarting; a clean
			// non-zero exit means the incarnation diagnosed its own problem.
			var ee *exec.ExitError
			return !(errors.As(err, &ee) && ee.ExitCode() == -1)
		},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if want := len(killSchedule) + 1; incarnations != want {
		t.Errorf("ran %d coordinator incarnations, want %d (one per scheduled kill plus the survivor)",
			incarnations, want)
	}
	// The run completed: every worker got its shutdown and must exit cleanly.
	for i, c := range cmds {
		if err := c.Wait(); err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	return outPath
}

// TestCoordinatorFailoverByteIdentical is the failover tentpole's acceptance
// test: SIGKILL the coordinator at durable checkpoint boundaries — once early
// at spawn=2, twice (mid-run, then again right after the first restart's
// checkpoint) at spawn=4 — and the supervised run's final catalog file must
// be byte-identical to a crash-free in-process run's.
func TestCoordinatorFailoverByteIdentical(t *testing.T) {
	sv, init, icfg := distInputs()
	if len(init) < 4 {
		t.Skip("fixed-seed survey too sparse")
	}
	base, err := InferWithOptions(sv, init, icfg, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := base.TasksProcessed
	if total < 3 {
		t.Fatalf("only %d tasks; the failover grid needs more", total)
	}
	ref := filepath.Join(t.TempDir(), "reference.jsonl")
	if err := imageio.WriteCatalog(ref, base.Catalog); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		workers int
		kills   []int
	}{
		{2, []int{1}},            // crash right after the first durable checkpoint
		{4, []int{total / 2, 1}}, // mid-run crash, then crash the restarted coordinator too
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("spawn=%d_kills=%v", tc.workers, tc.kills), func(t *testing.T) {
			out := superviseTCPRun(t, tc.workers, tc.kills)
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatalf("supervised run left no catalog: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("supervised catalog differs from the crash-free reference (%d vs %d bytes)",
					len(got), len(want))
			}
		})
	}
}
