package celeste

import (
	"math"
	"testing"

	"celeste/internal/geom"
	"celeste/internal/model"
	"celeste/internal/psf"
	"celeste/internal/rng"
	"celeste/internal/survey"
)

// TestPublicAPISmoke exercises the documented facade flow end to end on a
// tiny sky: generate, infer, compare.
func TestPublicAPISmoke(t *testing.T) {
	cfg := DefaultSurveyConfig(21)
	cfg.Region = geom.NewBox(0, 0, 0.012, 0.012)
	cfg.DeepRegion = geom.Box{}
	cfg.DeepRuns = 0
	cfg.Runs = 1
	cfg.FieldW, cfg.FieldH = 112, 112
	cfg.SourceDensity = 30000
	cfg.Priors.R1Mean = [model.NumTypes]float64{math.Log(10), math.Log(12)}
	cfg.Priors.R1SD = [model.NumTypes]float64{0.5, 0.5}
	sv := GenerateSurvey(cfg)
	if len(sv.Truth) == 0 || len(sv.Images) == 0 {
		t.Skip("empty survey draw")
	}

	photoCat := RunPhoto(sv.Images)
	res := Infer(sv, sv.NoisyCatalog(22), InferConfig{
		Threads: 4, Rounds: 1, MaxIter: 15,
	})
	if len(res.Catalog) != len(sv.Truth) {
		t.Fatalf("catalog has %d entries, truth %d", len(res.Catalog), len(sv.Truth))
	}
	if res.Fits == 0 || res.Visits == 0 {
		t.Fatal("no optimization work recorded")
	}
	rows := CompareToTruth(sv, photoCat, res.Catalog)
	if len(rows) != 12 {
		t.Fatalf("expected 12 Table II rows, got %d", len(rows))
	}
	out := FormatComparison(rows)
	if out == "" {
		t.Fatal("empty comparison output")
	}
	// Celeste's posterior catalog must carry uncertainties.
	var withSD int
	for i := range res.Catalog {
		if res.Catalog[i].FluxSD[model.RefBand] > 0 {
			withSD++
		}
	}
	if withSD != len(res.Catalog) {
		t.Errorf("only %d of %d entries have flux uncertainties", withSD, len(res.Catalog))
	}
}

func TestFitSourceFacade(t *testing.T) {
	const pixScale = 1.1e-4
	truth := CatalogEntry{
		Pos:  SkyPos{RA: 0.003, Dec: 0.003},
		Flux: [5]float64{6, 9, 12, 14, 15},
	}
	r := rng.New(31)
	var images []*Image
	size := 40
	for band := 0; band < model.NumBands; band++ {
		w := geom.NewSimpleWCS(truth.Pos.RA-float64(size)/2*pixScale,
			truth.Pos.Dec-float64(size)/2*pixScale, pixScale)
		p := psf.Default(1.2)
		im := &survey.Image{Band: band, W: size, H: size, WCS: w, PSF: p,
			Iota: 100, Sky: 80, Pixels: make([]float64, size*size)}
		for i := range im.Pixels {
			im.Pixels[i] = 80
		}
		model.AddExpectedCounts(im.Pixels, size, size, w, p, &truth, band, 100, 6)
		for i, lam := range im.Pixels {
			im.Pixels[i] = float64(r.Poisson(lam))
		}
		images = append(images, im)
	}
	priors := DefaultPriors()
	init := truth
	init.Pos.RA += pixScale
	init.ProbGal = 0.5
	entry, elbo, iters := FitSource(images, &priors, init, 30)
	if iters == 0 || elbo == 0 {
		t.Fatal("no fit happened")
	}
	if d := geom.Dist(entry.Pos, truth.Pos) / pixScale; d > 0.5 {
		t.Errorf("position error %.2f px", d)
	}
	if entry.ProbGal > 0.3 {
		t.Errorf("star got ProbGal %.2f", entry.ProbGal)
	}
	if entry.FluxSD[model.RefBand] <= 0 || entry.FluxSD[model.RefBand] > 2 {
		t.Errorf("implausible ref-band SD %v", entry.FluxSD[model.RefBand])
	}
}

func TestClusterFacade(t *testing.T) {
	m := DefaultMachine(4)
	w := DefaultWorkload(4 * 68)
	r := SimulateCluster(m, w, false)
	if r.Makespan <= 0 || r.Visits <= 0 {
		t.Fatalf("degenerate simulation: %+v", r)
	}
	weak := WeakScaling([]int{1, 8}, 1)
	if len(weak) != 2 {
		t.Fatal("weak scaling results missing")
	}
	if weak[1].Components.LoadImbalance <= weak[0].Components.LoadImbalance {
		t.Error("imbalance should grow with node count")
	}
}
