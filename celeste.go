// Package celeste is a Go reproduction of "Cataloging the Visible Universe
// through Bayesian Inference at Petascale" (Regier et al., IPPS 2018): a
// variational-inference system that turns wide-field astronomical survey
// images into a Bayesian catalog of stars and galaxies, together with the
// distributed-optimization machinery (Dtree scheduling, PGAS parameter
// state, Cyclades conflict-free threading) and a discrete-event simulator of
// the paper's Cori Phase II runs.
//
// This package is the public facade. The typical flow:
//
//	cfg := celeste.DefaultSurveyConfig(1)
//	sv := celeste.GenerateSurvey(cfg)         // synthetic SDSS stand-in
//	init := sv.NoisyCatalog(2)                // the "preexisting catalog"
//	res := celeste.Infer(sv, init, celeste.InferConfig{})
//	rows := celeste.CompareToTruth(sv, photoCat, res.Catalog)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package celeste

import (
	"celeste/internal/catserve"
	"celeste/internal/cluster"
	"celeste/internal/core"
	"celeste/internal/dtree"
	"celeste/internal/elbo"
	"celeste/internal/geom"
	"celeste/internal/model"
	cnet "celeste/internal/net"
	"celeste/internal/partition"
	"celeste/internal/photo"
	"celeste/internal/survey"
	"celeste/internal/validate"
	"celeste/internal/vi"
)

// Re-exported core types. The aliases keep example and downstream code free
// of internal import paths while the implementation stays internal.
type (
	// CatalogEntry is one light source: position, type probability, fluxes,
	// galaxy shape, and (for Bayesian catalogs) posterior uncertainties.
	CatalogEntry = model.CatalogEntry
	// Params is the unconstrained 44-parameter variational state of one
	// source.
	Params = model.Params
	// Priors holds the model's prior distributions (Φ, Υ, Ξ).
	Priors = model.Priors
	// Survey is a synthetic multi-band, multi-epoch imaging survey.
	Survey = survey.Survey
	// SurveyConfig controls survey synthesis.
	SurveyConfig = survey.Config
	// Image is one band of one field of one run.
	Image = survey.Image
	// SkyBox is an axis-aligned region of sky in degrees.
	SkyBox = geom.Box
	// SkyPos is a sky position in degrees.
	SkyPos = geom.Pt2
	// Task is one unit of distributed work (a sky region).
	Task = partition.Task
	// Row is one line of a Table II-style accuracy comparison.
	Row = validate.Row
	// Machine describes simulated cluster hardware.
	Machine = cluster.Machine
	// Workload describes a simulated task population.
	Workload = cluster.Workload
	// SimResult is one simulated cluster run.
	SimResult = cluster.Result
	// Checkpoint is a resumable cut of a distributed run, captured at a task
	// boundary; resuming it yields a catalog byte-identical to the
	// uninterrupted run.
	Checkpoint = core.Checkpoint
	// FaultPlan schedules rank kills and stalls for fault-injected runs,
	// honored identically by the in-process runtime and the cluster
	// simulator.
	FaultPlan = dtree.FaultPlan
	// Fault is one scheduled rank failure or slowdown.
	Fault = dtree.Fault
	// Transport selects the TCP runtime for InferWithOptions: real worker
	// processes connect to its Listener, pull Dtree tasks, fetch frozen
	// stage input, and write results over the length-prefixed wire protocol.
	// The catalog is byte-identical to the in-process runtime's.
	Transport = cnet.Transport
	// WorkerOptions configures one TCP worker process (see RunWorker).
	WorkerOptions = core.WorkerOptions
	// Backoff is a deterministic capped jittered exponential delay schedule,
	// used for worker re-enrollment (WorkerOptions.RejoinBackoff) and
	// coordinator restarts (SuperviseOptions.Backoff).
	Backoff = core.Backoff
	// SuperviseOptions configures Supervise.
	SuperviseOptions = core.SuperviseOptions
	// CatalogStore is the catalog-as-a-service index: a quadtree over
	// (ra, dec) holding posterior summaries behind an RCU snapshot, fed
	// incrementally by a running inference (InferOptions.Catalog) or built
	// once from a finished catalog (NewCatalogStore).
	CatalogStore = catserve.Store
	// CatalogSnapshot is one immutable version of a CatalogStore, answering
	// cone / box / brightest-N queries without locking.
	CatalogSnapshot = catserve.Snapshot
	// CatalogServer serves a CatalogStore over HTTP with a per-snapshot
	// response cache.
	CatalogServer = catserve.Server
	// CatalogOptions tunes catalog index construction and caching.
	CatalogOptions = catserve.Options
)

// ErrRunAborted wraps the error returned when a checkpoint hook stops a run.
var ErrRunAborted = core.ErrAborted

// DefaultSurveyConfig returns a small but fully featured survey
// configuration (multi-epoch coverage plus a deep Stripe 82-like strip).
func DefaultSurveyConfig(seed uint64) SurveyConfig {
	return survey.DefaultConfig(seed)
}

// GenerateSurvey synthesizes a survey from the generative model.
func GenerateSurvey(cfg SurveyConfig) *Survey { return survey.Generate(cfg) }

// DefaultPriors returns hand-set SDSS-like priors.
func DefaultPriors() Priors { return model.DefaultPriors() }

// FitPriors learns priors from an existing catalog (the paper's
// preprocessing step).
func FitPriors(entries []CatalogEntry) Priors { return model.FitPriors(entries) }

// InferConfig controls the full distributed inference pipeline.
type InferConfig struct {
	// TargetWork is the per-task work target for sky partitioning
	// (estimated active pixel visits); 0 selects a size that yields a
	// handful of tasks for small surveys.
	TargetWork float64
	// Threads per simulated process (Cyclades workers).
	Threads int
	// PatchThreads is the intra-fit patch-sweep worker count per thread
	// (0 derives it from spare cores; see core.Config.PatchThreads).
	// Bitwise-neutral like Threads: it never changes the catalog bytes.
	PatchThreads int
	// Processes simulated for Dtree/PGAS distribution.
	Processes int
	// Rounds of block coordinate ascent per task.
	Rounds int
	// MaxIter bounds per-source Newton iterations.
	MaxIter int
	Seed    uint64

	// EagerHessian disables the lazy-Hessian trust region (every accepted
	// Newton step re-evaluates the full Hessian) and ColdSweeps disables the
	// cross-sweep warm starts. Both are ablation/reference knobs: the
	// defaults are strictly faster, and TestLazyHessianCatalogDelta bounds
	// the catalog difference they introduce.
	EagerHessian bool
	ColdSweeps   bool
}

// InferResult is the outcome of Infer.
type InferResult struct {
	// Catalog holds the fitted Bayesian catalog with uncertainties, index-
	// aligned with the initialization catalog.
	Catalog []CatalogEntry
	// Tasks is the generated two-stage partition.
	Tasks []Task
	// Fits, NewtonIters, and Visits aggregate the optimization work
	// (Visits drives FLOP accounting, Section VI-B).
	Fits, NewtonIters, Visits int64
	// TasksProcessed counts scheduled task executions.
	TasksProcessed int
	// FailedRanks and RequeuedTasks record injected-fault recovery.
	FailedRanks, RequeuedTasks int
	// JoinedRanks, LeftRanks, and StolenTasks record elastic membership on
	// the TCP runtime: workers admitted mid-run, graceful departures (not
	// failures), and tasks moved between rank pools by stealing.
	JoinedRanks, LeftRanks, StolenTasks int
}

// InferOptions controls fault tolerance for InferWithOptions.
type InferOptions struct {
	// CheckpointEvery fires OnCheckpoint after every that-many completed
	// tasks (0 disables checkpointing).
	CheckpointEvery int
	// OnCheckpoint receives each captured checkpoint (typically to persist
	// with imageio.SaveCheckpoint). A non-nil error aborts the run;
	// InferWithOptions then returns an error wrapping ErrRunAborted.
	OnCheckpoint func(*Checkpoint) error
	// Resume restores a prior run's checkpoint; the run's inputs must hash
	// identically, but Threads and Processes may differ.
	Resume *Checkpoint
	// Faults injects rank kills and stalls into the run.
	Faults *FaultPlan
	// Transport, when non-nil, runs the TCP coordinator runtime instead of
	// the in-process goroutine ranks: cfg.Processes worker processes (each
	// started with RunWorker or `celeste -worker`) serve the run's tasks.
	Transport *Transport

	// Catalog, when non-nil, receives the run's posterior summaries as they
	// commit: every CatalogEvery task completions the touched sources are
	// re-summarized from the live parameter array and folded into the store,
	// and at run completion the store is brought byte-identical to the
	// returned catalog. Queries against the store (directly or through a
	// CatalogServer) run concurrently with the fit, lock-free.
	Catalog *CatalogStore
	// CatalogEvery batches task commits per catalog update (0 inherits
	// CheckpointEvery, else every commit updates).
	CatalogEvery int
}

// Infer runs the full pipeline on a survey: two-stage sky partition from the
// initialization catalog, Dtree-scheduled region tasks over simulated
// processes, Cyclades-parallel joint optimization within each region, PGAS
// parameter state, and a final catalog with posterior uncertainties.
func Infer(sv *Survey, initCatalog []CatalogEntry, cfg InferConfig) *InferResult {
	res, err := InferWithOptions(sv, initCatalog, cfg, InferOptions{})
	if err != nil {
		// Impossible without checkpoint hooks, faults, or a resume state.
		panic(err)
	}
	return res
}

// InferWithOptions is the resumable entry point: Infer plus periodic
// checkpoint capture, resumption from a checkpoint, and fault injection.
// The task partition is regenerated deterministically from the inputs, so a
// resumed run only needs the survey, the same initialization catalog, and
// the checkpoint.
func InferWithOptions(sv *Survey, initCatalog []CatalogEntry, cfg InferConfig,
	opts InferOptions) (*InferResult, error) {

	tw := cfg.TargetWork
	if tw == 0 {
		tw = 2e6
	}
	tasks := partition.GenerateTwoStage(initCatalog, sv.Config.Region, partition.Options{
		TargetWork: tw,
	})
	if opts.Transport != nil && opts.Transport.TargetWork == 0 {
		// Advertise the resolved partition knob so workers regenerate the
		// identical task list. Copy first: the caller's struct is theirs.
		t := *opts.Transport
		t.TargetWork = tw
		opts.Transport = &t
	}
	runOpts := core.RunOptions{
		CheckpointEvery: opts.CheckpointEvery,
		OnCheckpoint:    opts.OnCheckpoint,
		Resume:          opts.Resume,
		Faults:          opts.Faults,
		Transport:       opts.Transport,
	}
	if opts.Catalog != nil {
		store := opts.Catalog
		runOpts.OnCatalog = store.Apply
		runOpts.CatalogEvery = opts.CatalogEvery
	}
	run, err := core.RunWithOptions(sv, initCatalog, tasks, core.Config{
		Threads:      cfg.Threads,
		PatchThreads: cfg.PatchThreads,
		Rounds:       cfg.Rounds,
		Processes:    cfg.Processes,
		Seed:         cfg.Seed,
		Fit:          vi.Options{MaxIter: cfg.MaxIter, EagerHessian: cfg.EagerHessian},
		ColdSweeps:   cfg.ColdSweeps,
	}, runOpts)
	if run == nil {
		return nil, err
	}
	return &InferResult{
		Catalog:        run.Catalog,
		Tasks:          tasks,
		Fits:           run.Stats.Fits,
		NewtonIters:    run.Stats.NewtonIters,
		Visits:         run.Stats.Visits,
		TasksProcessed: run.TasksProcessed,
		FailedRanks:    run.FailedRanks,
		RequeuedTasks:  run.RequeuedTasks,
		JoinedRanks:    run.JoinedRanks,
		LeftRanks:      run.LeftRanks,
		StolenTasks:    run.StolenTasks,
	}, err
}

// NewCatalogStore builds the spatial catalog index over a footprint. The
// entries seed the index (pass the initialization catalog to serve a live
// run through InferOptions.Catalog, or a finished catalog to serve a static
// file); source i of every later update must refer to entries[i].
func NewCatalogStore(bounds SkyBox, entries []CatalogEntry, opts CatalogOptions) *CatalogStore {
	return catserve.NewStore(bounds, entries, opts)
}

// NewCatalogServer wraps a catalog store in the HTTP query layer
// (cone / box / brightest-N / stats endpoints with per-snapshot caching).
func NewCatalogServer(store *CatalogStore) *CatalogServer {
	return catserve.NewServer(store)
}

// Supervise runs a coordinator incarnation repeatedly until it succeeds,
// returns a permanent error, or exhausts the restart budget. Transient
// crashes (by default anything except a checkpoint-hook abort) are retried
// after a backoff; `celeste -supervise` builds its coordinator-failover loop
// on this, classifying a child's signal death as transient and a clean
// non-zero exit as permanent.
func Supervise(run func(incarnation int) error, opts SuperviseOptions) error {
	return core.Supervise(run, opts)
}

// RunWorker joins a TCP run as one worker process: it connects to the
// coordinator at addr, reconstructs the run deterministically from the
// shared inputs (the coordinator must be running InferWithOptions with a
// Transport over the same survey and initialization catalog — the run-hash
// handshake refuses anything else), and processes tasks until the run ends.
// Worker-local knobs like Threads do not affect the catalog bytes.
func RunWorker(addr string, sv *Survey, initCatalog []CatalogEntry, opts WorkerOptions) error {
	return core.RunWorker(addr, sv, initCatalog, opts)
}

// FitSource fits a single light source against a set of images, returning
// the refined catalog entry with posterior uncertainties, the ELBO achieved,
// and the Newton iteration count. It is the library entry point for
// laptop-scale use (one source, a few frames).
func FitSource(images []*Image, priors *Priors, init CatalogEntry,
	maxIter int) (CatalogEntry, float64, int) {

	radius := core.InfluenceRadiusPx(&init, images[0].WCS.PixScale())
	pb := elbo.NewProblem(priors, images, init.Pos, radius)
	res := vi.Fit(pb, model.InitialParams(&init), vi.Options{MaxIter: maxIter})
	c := res.Params.Constrained()
	return model.Summarize(init.ID, &c), res.ELBO, res.Iters
}

// RunPhoto runs the heuristic baseline pipeline (the Table II comparator) on
// a set of images, typically one run's imagery.
func RunPhoto(images []*Image) []CatalogEntry {
	return photo.Run(images, photo.Config{})
}

// CompareToTruth scores two catalogs against the survey's ground truth and
// returns the Table II rows (Photo column first, Celeste column second).
func CompareToTruth(sv *Survey, photoCat, celesteCat []CatalogEntry) []Row {
	const matchRadiusPx = 4
	ps := validate.Score(sv.Truth, photoCat, sv.Config.PixScale, matchRadiusPx)
	cs := validate.Score(sv.Truth, celesteCat, sv.Config.PixScale, matchRadiusPx)
	return validate.Table(ps, cs)
}

// FormatComparison renders comparison rows in the paper's Table II layout.
func FormatComparison(rows []Row) string { return validate.Format(rows) }

// DefaultMachine returns the Cori Phase II hardware model at the given node
// count.
func DefaultMachine(nodes int) Machine { return cluster.DefaultMachine(nodes) }

// DefaultWorkload returns a paper-like task population.
func DefaultWorkload(tasks int) Workload { return cluster.DefaultWorkload(tasks) }

// SimulateCluster runs the discrete-event cluster simulation.
func SimulateCluster(m Machine, w Workload, synchronizedStart bool) *SimResult {
	return cluster.Simulate(m, w, synchronizedStart)
}

// WeakScaling reproduces the Figure 4 experiment (68 tasks per node).
func WeakScaling(nodeCounts []int, seed uint64) []*SimResult {
	return cluster.WeakScaling(nodeCounts, seed)
}

// StrongScaling reproduces the Figure 5 experiment (557,056 tasks total).
func StrongScaling(nodeCounts []int, seed uint64) []*SimResult {
	return cluster.StrongScaling(nodeCounts, seed)
}
