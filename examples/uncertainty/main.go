// Uncertainty: the paper argues that for sources near the detection limit,
// calibrated posterior uncertainty matters as much as the point estimate.
// This example fits the same faint star across several noise realizations
// and shows the posterior standard deviation tracking the actual scatter —
// and an ambiguous source getting an honestly uncertain classification.
package main

import (
	"fmt"
	"math"

	"celeste"
	"celeste/internal/geom"
	"celeste/internal/model"
	"celeste/internal/psf"
	"celeste/internal/rng"
	"celeste/internal/survey"
)

const pixScale = 1.1e-4

func render(seed uint64, truth celeste.CatalogEntry) []*celeste.Image {
	r := rng.New(seed)
	var images []*celeste.Image
	size := 40
	for band := 0; band < model.NumBands; band++ {
		w := geom.NewSimpleWCS(truth.Pos.RA-float64(size)/2*pixScale,
			truth.Pos.Dec-float64(size)/2*pixScale, pixScale)
		p := psf.Default(1.2)
		im := &survey.Image{Band: band, W: size, H: size, WCS: w, PSF: p,
			Iota: 100, Sky: 80, Pixels: make([]float64, size*size)}
		for i := range im.Pixels {
			im.Pixels[i] = im.Sky
		}
		model.AddExpectedCounts(im.Pixels, size, size, w, p, &truth, band, im.Iota, 6)
		for i, lam := range im.Pixels {
			im.Pixels[i] = float64(r.Poisson(lam))
		}
		images = append(images, im)
	}
	return images
}

func main() {
	priors := celeste.DefaultPriors()

	faint := celeste.CatalogEntry{
		Pos:  celeste.SkyPos{RA: 0.0022, Dec: 0.0022},
		Flux: [5]float64{1.0, 1.6, 2.2, 2.6, 2.8}, // near the detection limit
	}

	fmt.Println("faint star, 8 independent noise realizations:")
	var ests, sds []float64
	for rep := uint64(0); rep < 8; rep++ {
		images := render(100+rep, faint)
		init := faint
		init.ProbGal = 0.5
		entry, _, _ := celeste.FitSource(images, &priors, init, 30)
		ests = append(ests, entry.Flux[model.RefBand])
		sds = append(sds, entry.FluxSD[model.RefBand])
		fmt.Printf("  rep %d: r-flux %.2f ± %.2f (truth %.1f)\n",
			rep, entry.Flux[model.RefBand], entry.FluxSD[model.RefBand],
			faint.Flux[model.RefBand])
	}
	mean, scatter := stats(ests)
	var meanSD float64
	for _, s := range sds {
		meanSD += s / float64(len(sds))
	}
	fmt.Printf("empirical scatter %.2f vs mean reported SD %.2f — same scale\n\n",
		scatter, meanSD)
	_ = mean

	// An ambiguous compact galaxy: the posterior type probability hedges
	// rather than committing, unlike a hard heuristic label.
	fmt.Println("compact faint galaxies, increasingly point-like:")
	for _, scale := range []float64{3, 1.5, 0.7} {
		ambiguous := celeste.CatalogEntry{
			Pos: celeste.SkyPos{RA: 0.0022, Dec: 0.0022}, ProbGal: 1,
			Flux:       [5]float64{1.2, 1.9, 2.6, 3.1, 3.4},
			GalDevFrac: 0.5, GalAxisRatio: 0.85, GalAngle: 0.3,
			GalScale: scale * pixScale,
		}
		images := render(55, ambiguous)
		init := ambiguous
		init.ProbGal = 0.5
		entry, _, _ := celeste.FitSource(images, &priors, init, 30)
		fmt.Printf("  half-light radius %.1f px: P(galaxy) = %.2f ± %.2f\n",
			scale, entry.ProbGal, entry.ProbGalSD)
	}
	fmt.Println("a hard classifier must guess; the posterior reports the ambiguity")
}

func stats(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)-1))
}
