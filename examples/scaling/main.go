// Scaling: drive the Cori Phase II discrete-event simulator through a small
// weak-scaling sweep and the peak-performance configuration, printing the
// runtime component breakdown the paper plots in Figures 4-5 and the
// PFLOP/s time series of Section VII-D.
package main

import (
	"fmt"

	"celeste"
)

func main() {
	fmt.Println("weak scaling, 68 tasks per node (Figure 4 in miniature):")
	nodes := []int{1, 16, 256, 4096}
	fmt.Printf("%6s %10s %10s %10s %8s\n", "nodes", "task proc", "img load", "imbalance", "total")
	for i, r := range celeste.WeakScaling(nodes, 1) {
		c := r.Components
		fmt.Printf("%6d %9.0fs %9.0fs %9.0fs %7.0fs\n",
			nodes[i], c.TaskProcessing, c.ImageLoading, c.LoadImbalance, c.Total())
	}

	fmt.Println("\npeak-performance run (9568 nodes, synchronized start):")
	m := celeste.DefaultMachine(9568)
	m.SustainedEff = 1
	w := celeste.DefaultWorkload(9568 * 17 * 4)
	r := celeste.SimulateCluster(m, w, true)
	fmt.Printf("peak %.2f PFLOP/s across %d processes (paper: 1.54)\n",
		r.PeakPFLOPs, r.Processes)
	for i, v := range r.FLOPRateSeries {
		bar := ""
		for j := 0; j < int(v*30); j++ {
			bar += "#"
		}
		fmt.Printf("  min %2d %5.2f PF %s\n", i, v, bar)
	}
}
