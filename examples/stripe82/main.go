// Stripe 82 validation in miniature: generate a deep synthetic strip, run
// the heuristic Photo baseline and the full Celeste pipeline on one epoch's
// imagery, and print the Table II accuracy comparison against ground truth.
// This is the same harness as `experiments table2`, scoped to run in about a
// minute.
package main

import (
	"fmt"
	"math"
	"time"

	"celeste"
	"celeste/internal/geom"
	"celeste/internal/model"
)

func main() {
	start := time.Now()
	cfg := celeste.DefaultSurveyConfig(3)
	cfg.Region = geom.NewBox(0, 0, 0.02, 0.02)
	cfg.DeepRegion = cfg.Region
	cfg.Runs = 1
	cfg.DeepRuns = 0
	cfg.FieldW, cfg.FieldH = 128, 128
	cfg.SourceDensity = 30000
	cfg.Priors.R1Mean = [model.NumTypes]float64{math.Log(12), math.Log(15)}
	cfg.Priors.R1SD = [model.NumTypes]float64{0.6, 0.6}
	sv := celeste.GenerateSurvey(cfg)
	fmt.Printf("synthetic strip: %d sources, %d frames\n", len(sv.Truth), len(sv.Images))

	photoCat := celeste.RunPhoto(sv.Images)
	fmt.Printf("Photo cataloged %d sources\n", len(photoCat))

	res := celeste.Infer(sv, sv.NoisyCatalog(4), celeste.InferConfig{
		Threads: 8, Rounds: 2, MaxIter: 25,
	})
	fmt.Printf("Celeste fitted %d sources (%d Newton fits)\n\n",
		len(res.Catalog), res.Fits)

	rows := celeste.CompareToTruth(sv, photoCat, res.Catalog)
	fmt.Print(celeste.FormatComparison(rows))
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Second))
}
