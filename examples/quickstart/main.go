// Quickstart: synthesize a tiny sky, fit one star with the public API, and
// print the Bayesian catalog entry with its posterior uncertainties — the
// five-minute tour of what Celeste produces that a heuristic pipeline
// cannot.
package main

import (
	"fmt"
	"math"

	"celeste"
	"celeste/internal/geom"
	"celeste/internal/model"
	"celeste/internal/psf"
	"celeste/internal/rng"
	"celeste/internal/survey"
)

func main() {
	const pixScale = 1.1e-4 // degrees/pixel, SDSS-like

	// The true source: a moderately bright star.
	truth := celeste.CatalogEntry{
		ID:   0,
		Pos:  celeste.SkyPos{RA: 0.003, Dec: 0.003},
		Flux: [5]float64{6, 9, 12, 14, 15}, // nanomaggies in ugriz
	}

	// Two epochs of five-band imagery rendered from the generative model.
	r := rng.New(7)
	var images []*celeste.Image
	size := 48
	for epoch := 0; epoch < 2; epoch++ {
		for band := 0; band < model.NumBands; band++ {
			w := geom.NewSimpleWCS(truth.Pos.RA-float64(size)/2*pixScale,
				truth.Pos.Dec-float64(size)/2*pixScale, pixScale)
			p := psf.Default(1.1 + 0.1*float64(epoch))
			im := &survey.Image{
				Band: band, W: size, H: size, WCS: w, PSF: p,
				Iota: 100, Sky: 80, Pixels: make([]float64, size*size),
			}
			for i := range im.Pixels {
				im.Pixels[i] = im.Sky
			}
			model.AddExpectedCounts(im.Pixels, size, size, w, p, &truth, band, im.Iota, 6)
			for i, lam := range im.Pixels {
				im.Pixels[i] = float64(r.Poisson(lam))
			}
			images = append(images, im)
		}
	}

	// Initialize from a deliberately wrong catalog entry (position off by a
	// pixel, flux off by 30%, type unknown) and let the Newton trust-region
	// optimizer recover the truth.
	init := truth
	init.Pos.RA += 1.0 * pixScale
	for b := range init.Flux {
		init.Flux[b] *= 1.3
	}
	init.ProbGal = 0.5

	priors := celeste.DefaultPriors()
	entry, elbo, iters := celeste.FitSource(images, &priors, init, 40)

	fmt.Println("fitted catalog entry:")
	fmt.Printf("  position error: %.3f pixels\n",
		geom.Dist(entry.Pos, truth.Pos)/pixScale)
	fmt.Printf("  P(galaxy) = %.3f (truth: star)\n", entry.ProbGal)
	for b, name := range [5]string{"u", "g", "r", "i", "z"} {
		fmt.Printf("  %s flux: %6.2f ± %.2f nmgy  (truth %.1f, z=%+.2f)\n",
			name, entry.Flux[b], entry.FluxSD[b], truth.Flux[b],
			(entry.Flux[b]-truth.Flux[b])/entry.FluxSD[b])
	}
	fmt.Printf("  ELBO %.1f after %d Newton iterations\n", elbo, iters)
	if math.Abs(entry.Flux[2]-truth.Flux[2]) < 3*entry.FluxSD[2] {
		fmt.Println("  posterior covers the truth — calibrated uncertainty, not just a point estimate")
	}
}
