// Crowded field: two stars blended within a few pixels of each other — the
// situation the paper's introduction motivates ("the optimal parameters for
// one light source depend on the optimal parameters of nearby light
// sources"). This example runs the full joint pipeline (two-stage sky
// partition, Cyclades conflict-free threading, block coordinate ascent) and
// shows that joint inference untangles fluxes that independent fits get
// wrong.
package main

import (
	"fmt"
	"math"

	"celeste"
	"celeste/internal/elbo"
	"celeste/internal/geom"
	"celeste/internal/model"
	"celeste/internal/psf"
	"celeste/internal/rng"
	"celeste/internal/survey"
	"celeste/internal/vi"
)

func main() {
	const pixScale = 1.1e-4
	r := rng.New(11)

	// Two stars 3 pixels apart: badly blended at PSF sigma 1.2 px.
	a := celeste.CatalogEntry{ID: 0,
		Pos:  celeste.SkyPos{RA: 0.005, Dec: 0.005},
		Flux: [5]float64{10, 14, 18, 20, 22}}
	b := celeste.CatalogEntry{ID: 1,
		Pos:  celeste.SkyPos{RA: 0.005 + 3*pixScale, Dec: 0.005},
		Flux: [5]float64{14, 19, 26, 29, 32}}

	var images []*celeste.Image
	size := 64
	for band := 0; band < model.NumBands; band++ {
		w := geom.NewSimpleWCS(a.Pos.RA-float64(size)/2*pixScale,
			a.Pos.Dec-float64(size)/2*pixScale, pixScale)
		p := psf.Default(1.2)
		im := &survey.Image{Band: band, W: size, H: size, WCS: w, PSF: p,
			Iota: 100, Sky: 75, Pixels: make([]float64, size*size)}
		for i := range im.Pixels {
			im.Pixels[i] = im.Sky
		}
		model.AddExpectedCounts(im.Pixels, size, size, w, p, &a, band, im.Iota, 6)
		model.AddExpectedCounts(im.Pixels, size, size, w, p, &b, band, im.Iota, 6)
		for i, lam := range im.Pixels {
			im.Pixels[i] = float64(r.Poisson(lam))
		}
		images = append(images, im)
	}

	priors := celeste.DefaultPriors()
	fitFlux := func(target celeste.CatalogEntry, neighbor *celeste.CatalogEntry) float64 {
		pb := elbo.NewProblem(&priors, images, target.Pos, 12)
		if neighbor != nil {
			np := model.InitialParams(neighbor)
			nc := np.Constrained()
			pb.AddNeighbor(&nc)
		}
		res := vi.Fit(pb, model.InitialParams(&target), vi.Options{MaxIter: 40})
		c := res.Params.Constrained()
		return c.ExpectedFluxes()[model.RefBand]
	}

	// Naive: fit each star pretending it is alone.
	naiveA := fitFlux(a, nil)
	// Joint: fit with the neighbor's light explained away (one block
	// coordinate ascent step of the full algorithm).
	jointA := fitFlux(a, &b)

	fmt.Println("blended pair, r-band flux of star A (truth 18.0 nmgy):")
	fmt.Printf("  independent fit: %6.2f  (error %4.1f%%)\n",
		naiveA, 100*math.Abs(naiveA-18)/18)
	fmt.Printf("  joint fit:       %6.2f  (error %4.1f%%)\n",
		jointA, 100*math.Abs(jointA-18)/18)
	fmt.Println("joint inference explains the neighbor's photons instead of absorbing them")
}
