// Command celeste runs the full Bayesian inference pipeline on a survey
// directory written by skygen, producing a catalog with posterior
// uncertainties:
//
//	celeste -sky ./sky -out catalog.jsonl -threads 8 -rounds 2
//
// If the directory contains truth.jsonl, accuracy against ground truth is
// reported.
//
// Long runs are killable and resumable: -checkpoint persists the run state
// to a file at task-boundary intervals, and -resume restarts from it,
// producing a catalog byte-identical to an uninterrupted run:
//
//	celeste -sky ./sky -checkpoint run.celk            # killed partway
//	celeste -sky ./sky -checkpoint run.celk -resume    # finishes the run
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"celeste"
	"celeste/internal/flops"
	"celeste/internal/geom"
	"celeste/internal/imageio"
	"celeste/internal/model"
	"celeste/internal/survey"
)

func main() {
	sky := flag.String("sky", "sky", "survey directory from skygen")
	out := flag.String("out", "catalog.jsonl", "output catalog path")
	threads := flag.Int("threads", 8, "Cyclades worker threads per process")
	procs := flag.Int("procs", 4, "simulated Dtree/PGAS processes")
	rounds := flag.Int("rounds", 2, "block coordinate ascent rounds per task")
	maxIter := flag.Int("maxiter", 40, "Newton iterations per source fit")
	seed := flag.Uint64("seed", 1, "random seed")
	ckPath := flag.String("checkpoint", "", "checkpoint file to write at task boundaries (empty: no checkpointing)")
	ckEvery := flag.Int("checkpoint-every", 1, "tasks between checkpoints")
	resume := flag.Bool("resume", false, "resume from -checkpoint if the file exists")
	flag.Parse()

	images, truth, err := imageio.ReadSurveyDir(*sky)
	if err != nil {
		log.Fatal(err)
	}
	init, err := imageio.ReadCatalog(filepath.Join(*sky, "init.jsonl"))
	if err != nil {
		log.Fatalf("reading init catalog: %v (run skygen first)", err)
	}

	// Rebuild the survey container around the loaded frames.
	sv := reassemble(images, truth)
	fmt.Printf("loaded %d frames, %d catalog entries\n", len(images), len(init))

	var opts celeste.InferOptions
	if *resume && *ckPath == "" {
		log.Fatal("-resume requires -checkpoint to name the checkpoint file")
	}
	if *ckPath != "" {
		opts.CheckpointEvery = *ckEvery
		opts.OnCheckpoint = func(ck *celeste.Checkpoint) error {
			return imageio.SaveCheckpoint(*ckPath, ck)
		}
		if *resume {
			ck, err := imageio.LoadCheckpoint(*ckPath)
			switch {
			case err == nil:
				opts.Resume = ck
				fmt.Printf("resuming from %s (%d tasks done)\n", *ckPath, countDone(ck.Done))
			case os.IsNotExist(err):
				fmt.Printf("no checkpoint at %s; starting fresh\n", *ckPath)
			default:
				log.Fatalf("loading checkpoint: %v", err)
			}
		}
	}

	start := time.Now()
	res, err := celeste.InferWithOptions(sv, init, celeste.InferConfig{
		Threads: *threads, Processes: *procs, Rounds: *rounds,
		MaxIter: *maxIter, Seed: *seed,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if err := imageio.WriteCatalog(*out, res.Catalog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d entries to %s\n", len(res.Catalog), *out)
	fmt.Printf("%d tasks, %d fits, mean %.1f Newton iters/fit\n",
		res.TasksProcessed, res.Fits,
		float64(res.NewtonIters)/math.Max(float64(res.Fits), 1))
	fmt.Printf("%.2e FLOPs (%.1fM active pixel visits) in %s => %.2f GFLOP/s\n",
		flops.Total(res.Visits), float64(res.Visits)/1e6, elapsed.Round(time.Millisecond),
		flops.Rate(res.Visits, elapsed.Seconds())/1e9)

	if len(truth) > 0 {
		var pos, mag float64
		var n float64
		for i := range truth {
			if i >= len(res.Catalog) {
				break
			}
			pos += geom.Dist(truth[i].Pos, res.Catalog[i].Pos) / sv.Config.PixScale
			tf, ef := truth[i].Flux[model.RefBand], res.Catalog[i].Flux[model.RefBand]
			if tf > 0 && ef > 0 {
				mag += math.Abs(2.5 * math.Log10(ef/tf))
			}
			n++
		}
		fmt.Printf("vs truth: mean position error %.3f px, mean |Δmag| %.3f\n",
			pos/n, mag/n)
	}
}

// countDone tallies set bits of a completion bitmap.
func countDone(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

// reassemble rebuilds a Survey value around frames loaded from disk,
// recovering the configuration geometry from the frames themselves.
func reassemble(images []*survey.Image, truth []model.CatalogEntry) *survey.Survey {
	sv := &survey.Survey{Images: images, Truth: truth}
	if len(images) > 0 {
		fp := images[0].Footprint()
		for _, im := range images[1:] {
			f := im.Footprint()
			fp.MinRA = math.Min(fp.MinRA, f.MinRA)
			fp.MinDec = math.Min(fp.MinDec, f.MinDec)
			fp.MaxRA = math.Max(fp.MaxRA, f.MaxRA)
			fp.MaxDec = math.Max(fp.MaxDec, f.MaxDec)
		}
		sv.Config.Region = fp
		sv.Config.PixScale = images[0].WCS.PixScale()
		sv.Config.FieldW = images[0].W
		sv.Config.FieldH = images[0].H
	}
	return sv
}
