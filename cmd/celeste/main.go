// Command celeste runs the full Bayesian inference pipeline on a survey
// directory written by skygen, producing a catalog with posterior
// uncertainties:
//
//	celeste -sky ./sky -out catalog.jsonl -threads 8 -rounds 2
//
// If the directory contains truth.jsonl, accuracy against ground truth is
// reported.
//
// Long runs are killable and resumable: -checkpoint persists the run state
// to a file at task-boundary intervals, and -resume restarts from it,
// producing a catalog byte-identical to an uninterrupted run:
//
//	celeste -sky ./sky -checkpoint run.celk            # killed partway
//	celeste -sky ./sky -checkpoint run.celk -resume    # finishes the run
//
// The run can also be distributed over real worker processes speaking the
// TCP wire protocol (internal/net), reproducing the in-process catalog
// byte-for-byte. Either spawn local workers in one step:
//
//	celeste -sky ./sky -spawn 4
//
// or run the coordinator and workers by hand (possibly on other machines
// sharing the survey directory):
//
//	celeste -sky ./sky -serve :7021
//	celeste -sky ./sky -worker host:7021 &   # × N
//
// The catalog is queryable over HTTP — live during a fit (served from RCU
// snapshots refreshed as tasks commit) or from a finished catalog file:
//
//	celeste -sky ./sky -query :8080              # fit + live query service
//	celeste -query :8080 -load catalog.jsonl     # serve a finished catalog
//
// Endpoints: /cone?ra=&dec=&r=, /box?ramin=&decmin=&ramax=&decmax=,
// /brightest?n=[&band=], /stats (all accept &limit= where meaningful).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"celeste"
	"celeste/internal/flops"
	"celeste/internal/geom"
	"celeste/internal/imageio"
	"celeste/internal/model"
	"celeste/internal/net/chaos"
	"celeste/internal/survey"
)

// flagConfig is the subset of flags whose combinations need validating, in a
// plain struct so the matrix is table-testable.
type flagConfig struct {
	Serve        string        // -serve listen address
	Worker       string        // -worker coordinator address
	Spawn        int           // -spawn local worker count
	SpawnSet     bool          // -spawn appeared on the command line
	Checkpoint   string        // -checkpoint path
	Resume       bool          // -resume
	Procs        int           // -procs
	Threads      int           // -threads
	Elastic      bool          // -elastic
	ChurnKill    time.Duration // -churn-kill
	ChurnAdd     time.Duration // -churn-add
	Query        string        // -query listen address
	Load         string        // -load catalog path
	Supervise    bool          // -supervise
	ServeFD      int           // -serve-fd (internal; 0 when absent — fd 0 is never a listener)
	Rejoin       int           // -rejoin
	RejoinWindow time.Duration // -rejoin-window
	ChaosSeed    uint64        // -chaos-seed
	ChaosMean    int           // -chaos-mean
}

// validateFlags rejects contradictory or silently misbehaving flag
// combinations up front, with errors that say what to do instead.
func validateFlags(fc flagConfig) error {
	switch {
	case fc.SpawnSet && fc.Spawn < 1:
		return fmt.Errorf("-spawn %d: need at least one worker process", fc.Spawn)
	case fc.Worker != "" && fc.Serve != "":
		return errors.New("-worker and -serve are mutually exclusive: a process is either a worker or the coordinator")
	case fc.Worker != "" && fc.SpawnSet:
		return errors.New("-worker and -spawn are mutually exclusive: only the coordinator spawns workers")
	case fc.Worker != "" && fc.Checkpoint != "":
		return errors.New("-worker cannot take -checkpoint: the coordinator owns checkpointing (pass -checkpoint to the -serve/-spawn process)")
	case fc.Worker != "" && fc.Resume:
		return errors.New("-worker cannot take -resume: the coordinator owns checkpoint state (pass -resume to the -serve/-spawn process)")
	case fc.Resume && fc.Checkpoint == "":
		return errors.New("-resume requires -checkpoint to name the checkpoint file")
	case fc.Serve != "" && fc.SpawnSet:
		return errors.New("-serve and -spawn are mutually exclusive: -spawn listens on a loopback port it picks itself")
	case fc.Procs < 1:
		return fmt.Errorf("-procs %d: need at least one process", fc.Procs)
	case fc.Threads < 1:
		return fmt.Errorf("-threads %d: need at least one thread", fc.Threads)
	case fc.Elastic && fc.Worker == "":
		return errors.New("-elastic only applies to -worker: elastic admission is a worker-side handshake")
	case fc.ChurnKill < 0 || fc.ChurnAdd < 0:
		return errors.New("churn delays must be non-negative")
	case (fc.ChurnKill > 0 || fc.ChurnAdd > 0) && !fc.SpawnSet:
		return errors.New("-churn-kill and -churn-add require -spawn: churn drives the locally spawned worker pool")
	case fc.ChurnKill > 0 && fc.Spawn < 2:
		return errors.New("-churn-kill needs -spawn of at least 2 so a survivor can finish the run")
	case fc.Load != "" && fc.Query == "":
		return errors.New("-load requires -query: a loaded catalog is only used to serve queries")
	case fc.Load != "" && (fc.Worker != "" || fc.Serve != "" || fc.SpawnSet ||
		fc.Checkpoint != "" || fc.Resume):
		return errors.New("-load serves a finished catalog without running inference; it cannot combine with -worker, -serve, -spawn, -checkpoint, or -resume")
	case fc.Query != "" && fc.Worker != "":
		return errors.New("-query only applies to the coordinator or to -load: a worker process does not own catalog state")
	case fc.Supervise && fc.Checkpoint == "":
		return errors.New("-supervise requires -checkpoint: a restarted coordinator resumes from it")
	case fc.Supervise && fc.Serve == "" && !fc.SpawnSet:
		return errors.New("-supervise requires -serve or -spawn: only the TCP coordinator is supervised")
	case fc.Supervise && fc.Worker != "":
		return errors.New("-supervise applies to the coordinator, not -worker (workers re-enroll on their own via -rejoin)")
	case fc.Supervise && fc.Query != "":
		return errors.New("-supervise cannot host -query: the query service lives inside the coordinator child process")
	case fc.Supervise && (fc.ChurnKill > 0 || fc.ChurnAdd > 0):
		return errors.New("-supervise does not combine with churn flags: churn the workers of a plain -spawn run instead")
	case fc.ServeFD > 0 && (fc.Serve != "" || fc.SpawnSet || fc.Supervise || fc.Worker != ""):
		return errors.New("-serve-fd is internal to -supervise coordinator children and excludes -serve, -spawn, -supervise, and -worker")
	case fc.Rejoin < 0:
		return fmt.Errorf("-rejoin %d: the re-enrollment budget must be non-negative", fc.Rejoin)
	case fc.RejoinWindow < 0:
		return errors.New("-rejoin-window must be non-negative")
	case (fc.Rejoin > 0 || fc.RejoinWindow > 0) && fc.Worker == "" && !(fc.Supervise && fc.SpawnSet):
		return errors.New("-rejoin and -rejoin-window configure a -worker process (or the workers of a supervised -spawn)")
	case fc.ChaosSeed != 0 && !fc.SpawnSet:
		return errors.New("-chaos-seed requires -spawn: the chaos proxy interposes on locally spawned worker links")
	case fc.ChaosSeed != 0 && fc.Supervise:
		return errors.New("-chaos-seed does not combine with -supervise (the differential test harness covers chaos plus failover)")
	case fc.ChaosMean < 0:
		return errors.New("-chaos-mean must be non-negative")
	}
	return nil
}

func main() {
	sky := flag.String("sky", "sky", "survey directory from skygen")
	out := flag.String("out", "catalog.jsonl", "output catalog path")
	threads := flag.Int("threads", 8, "Cyclades worker threads per process")
	patchThreads := flag.Int("patch-threads", 0, "intra-fit patch-sweep workers per thread (0: derive from spare cores; any value yields byte-identical catalogs)")
	procs := flag.Int("procs", 4, "Dtree/PGAS processes (with -serve: expected worker connections)")
	rounds := flag.Int("rounds", 2, "block coordinate ascent rounds per task")
	maxIter := flag.Int("maxiter", 40, "Newton iterations per source fit")
	seed := flag.Uint64("seed", 1, "random seed")
	ckPath := flag.String("checkpoint", "", "checkpoint file to write at task boundaries (empty: no checkpointing)")
	ckEvery := flag.Int("checkpoint-every", 1, "tasks between checkpoints")
	resume := flag.Bool("resume", false, "resume from -checkpoint if the file exists")
	serveAddr := flag.String("serve", "", "serve the run over TCP on this address; -procs worker processes must connect")
	workerAddr := flag.String("worker", "", "join the run served by the coordinator at this address as one worker process")
	spawn := flag.Int("spawn", 0, "serve on a loopback port and fork this many local worker processes")
	elastic := flag.Bool("elastic", false, "with -worker: join the run elastically mid-run (admitted after the connect grace with a fresh rank)")
	churnKill := flag.Duration("churn-kill", 0, "with -spawn: SIGKILL one spawned worker after this delay (its work requeues to the survivors)")
	churnAdd := flag.Duration("churn-add", 0, "with -spawn: start one extra elastic worker after this delay")
	queryAddr := flag.String("query", "", "serve catalog queries over HTTP on this address, live during the fit and from the final catalog after it")
	loadPath := flag.String("load", "", "with -query: serve this finished catalog file instead of running inference")
	supervise := flag.Bool("supervise", false, "with -serve/-spawn and -checkpoint: fork the coordinator as a child and restart it from the checkpoint if it dies to a signal")
	maxRestarts := flag.Int("max-restarts", 5, "with -supervise: coordinator restarts before giving up")
	serveFD := flag.Int("serve-fd", 0, "internal: coordinator child inherits its listening socket on this file descriptor (set by -supervise; 0: unset)")
	rejoin := flag.Int("rejoin", 0, "with -worker: re-dial budget per outage when the coordinator connection drops (0: fail on first loss unless -elastic)")
	rejoinWindow := flag.Duration("rejoin-window", 0, "with -worker: give up re-enrolling after this long in one outage (0: no deadline)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "with -spawn: interpose a deterministic fault-injecting proxy on worker links, seeded here (0: off)")
	chaosMean := flag.Int("chaos-mean", 4096, "with -chaos-seed: mean bytes between injected faults per connection direction")
	chaosBudget := flag.Int("chaos-budget", 16, "with -chaos-seed: total faults across the run before the proxy goes quiet (<0: unlimited)")
	flag.Parse()

	fc := flagConfig{
		Serve: *serveAddr, Worker: *workerAddr, Spawn: *spawn,
		Checkpoint: *ckPath, Resume: *resume, Procs: *procs, Threads: *threads,
		Elastic: *elastic, ChurnKill: *churnKill, ChurnAdd: *churnAdd,
		Query: *queryAddr, Load: *loadPath,
		Supervise: *supervise, ServeFD: *serveFD,
		Rejoin: *rejoin, RejoinWindow: *rejoinWindow,
		ChaosSeed: *chaosSeed, ChaosMean: *chaosMean,
	}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "spawn" {
			fc.SpawnSet = true
		}
	})
	if err := validateFlags(fc); err != nil {
		log.Fatal(err)
	}

	if *loadPath != "" {
		// Query-only mode: index a finished catalog file and serve it until
		// interrupted. No survey directory, no inference.
		cat, err := imageio.ReadCatalog(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		store := celeste.NewCatalogStore(catalogBounds(cat), cat, celeste.CatalogOptions{})
		stop, bound, err := serveCatalog(store, *queryAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("serving %d catalog entries on http://%s (/cone /box /brightest /stats); Ctrl-C to exit\n",
			len(cat), bound)
		waitForSignal()
		return
	}

	if *supervise {
		// The supervisor owns only the listening socket and the worker pool;
		// the coordinator proper runs in restartable children.
		err := runSupervised(supConfig{
			ListenAddr: *serveAddr, Spawn: *spawn, SpawnSet: fc.SpawnSet,
			Procs: *procs, Sky: *sky, Out: *out,
			Threads: *threads, PatchThreads: *patchThreads,
			Rounds: *rounds, MaxIter: *maxIter, Seed: *seed,
			Checkpoint: *ckPath, CkEvery: *ckEvery,
			MaxRestarts: *maxRestarts,
			Rejoin:      *rejoin, RejoinWindow: *rejoinWindow,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	images, truth, err := imageio.ReadSurveyDir(*sky)
	if err != nil {
		log.Fatal(err)
	}
	init, err := imageio.ReadCatalog(filepath.Join(*sky, "init.jsonl"))
	if err != nil {
		log.Fatalf("reading init catalog: %v (run skygen first)", err)
	}

	// Rebuild the survey container around the loaded frames.
	sv := reassemble(images, truth)
	fmt.Printf("loaded %d frames, %d catalog entries\n", len(images), len(init))

	if *workerAddr != "" {
		// Worker mode: pull tasks from the coordinator until the run ends.
		// The run hash handshake proves this process reconstructed the same
		// survey, catalog, and partition byte-for-byte.
		wopts := celeste.WorkerOptions{Threads: *threads, PatchThreads: *patchThreads}
		if *elastic {
			// Elastic workers expect churn: re-dial a few times if the
			// connection (or heartbeat) drops mid-run.
			wopts.Elastic = true
			wopts.Rejoin = 3
		}
		if *rejoin > 0 {
			wopts.Rejoin = *rejoin
		}
		wopts.RejoinWindow = *rejoinWindow
		if err := celeste.RunWorker(*workerAddr, sv, init, wopts); err != nil {
			log.Fatalf("worker: %v", err)
		}
		fmt.Println("worker: run complete")
		return
	}

	var opts celeste.InferOptions
	if *ckPath != "" {
		opts.CheckpointEvery = *ckEvery
		opts.OnCheckpoint = func(ck *celeste.Checkpoint) error {
			return imageio.SaveCheckpoint(*ckPath, ck)
		}
		if *resume {
			ck, err := imageio.LoadCheckpoint(*ckPath)
			switch {
			case err == nil:
				opts.Resume = ck
				fmt.Printf("resuming from %s (%d tasks done)\n", *ckPath, countDone(ck.Done))
			case os.IsNotExist(err):
				fmt.Printf("no checkpoint at %s; starting fresh\n", *ckPath)
			default:
				log.Fatalf("loading checkpoint: %v", err)
			}
		}
	}

	if *queryAddr != "" {
		// Live catalog service: the store is seeded with the init catalog and
		// refreshed by the run's commit hook; queries are answered throughout
		// the fit from RCU snapshots, and after the final flush they return
		// entries byte-identical to the written catalog.
		store := celeste.NewCatalogStore(sv.Config.Region, init, celeste.CatalogOptions{})
		opts.Catalog = store
		stop, bound, err := serveCatalog(store, *queryAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("catalog queries live on http://%s (/cone /box /brightest /stats)\n", bound)
	}

	var spawned []*exec.Cmd
	if *serveAddr != "" || fc.SpawnSet || *serveFD > 0 {
		var l net.Listener
		if *serveFD > 0 {
			// Supervised child: the parent owns the socket and passes it down,
			// so a restarted incarnation serves the same address and pending
			// worker dials queue in the backlog across the crash.
			f := os.NewFile(uintptr(*serveFD), "supervised-listener")
			l, err = net.FileListener(f)
			f.Close()
			if err != nil {
				log.Fatalf("inheriting listener from fd %d: %v", *serveFD, err)
			}
		} else {
			listenAddr := *serveAddr
			if fc.SpawnSet {
				listenAddr = "127.0.0.1:0"
				*procs = *spawn
			}
			if l, err = net.Listen("tcp", listenAddr); err != nil {
				log.Fatal(err)
			}
		}
		opts.Transport = &celeste.Transport{Listener: l}
		if *serveFD > 0 {
			// A supervised deployment's workers carry rejoin budgets: if a
			// fault severs every link at once, hold the run open for their
			// re-enrollment instead of stranding on the transient partition.
			opts.Transport.RejoinGrace = 30 * time.Second
		}
		fmt.Printf("serving on %s, expecting %d workers\n", l.Addr(), *procs)
		if fc.SpawnSet {
			dial := l.Addr().String()
			var workerExtra []string
			if *chaosSeed != 0 {
				pl, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					log.Fatal(err)
				}
				px := chaos.New(pl, dial, chaos.Config{
					Seed: *chaosSeed, MeanFaultBytes: int64(*chaosMean), MaxFaults: *chaosBudget,
				})
				px.Start()
				defer func() {
					px.Close()
					fmt.Printf("chaos: %d faults injected\n", px.Injected())
				}()
				dial = px.Addr().String()
				// Faulted links sever mid-run; give the workers the budget to
				// re-enroll instead of dying on the first reset, and hold the
				// run open when a fault burst severs every link at once so the
				// fleet's re-enrollment rescues it instead of stranding.
				workerExtra = []string{"-rejoin", "64"}
				opts.Transport.RejoinGrace = 30 * time.Second
				fmt.Printf("chaos: faulting worker links (seed %d, mean gap %d bytes, budget %d)\n",
					*chaosSeed, *chaosMean, *chaosBudget)
			}
			spawned, err = spawnWorkers(dial, *spawn, *sky, *threads, *patchThreads, false, workerExtra...)
			if err != nil {
				log.Fatal(err)
			}
			if *churnKill > 0 {
				victim := spawned[0]
				time.AfterFunc(*churnKill, func() {
					fmt.Printf("churn: killing worker %d\n", victim.Process.Pid)
					victim.Process.Kill()
				})
			}
			if *churnAdd > 0 {
				addr := l.Addr().String()
				joiner := make(chan *exec.Cmd, 1)
				// The callback always sends exactly one value (nil if the
				// spawn failed), so a fired timer guarantees the reaper a
				// value to drain.
				timer := time.AfterFunc(*churnAdd, func() {
					extra, err := spawnWorkers(addr, 1, *sky, *threads, *patchThreads, true)
					if err != nil {
						fmt.Fprintf(os.Stderr, "churn: adding worker: %v\n", err)
						joiner <- nil
						return
					}
					fmt.Printf("churn: added elastic worker %d\n", extra[0].Process.Pid)
					joiner <- extra[0]
				})
				defer reapJoiner(timer, joiner)
			}
		}
	}

	start := time.Now()
	res, err := celeste.InferWithOptions(sv, init, celeste.InferConfig{
		Threads: *threads, PatchThreads: *patchThreads, Processes: *procs,
		Rounds: *rounds, MaxIter: *maxIter, Seed: *seed,
	}, opts)
	for _, cmd := range spawned {
		// Workers exit after the coordinator's shutdown message; reap them.
		// A churn-killed worker's SIGKILL exit is expected, not an error.
		if werr := cmd.Wait(); werr != nil && err == nil && *churnKill == 0 {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", cmd.Process.Pid, werr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if err := imageio.WriteCatalog(*out, res.Catalog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d entries to %s\n", len(res.Catalog), *out)
	fmt.Printf("%d tasks, %d fits, mean %.1f Newton iters/fit\n",
		res.TasksProcessed, res.Fits,
		float64(res.NewtonIters)/math.Max(float64(res.Fits), 1))
	if res.FailedRanks > 0 {
		fmt.Printf("recovered from %d dead workers (%d tasks requeued)\n",
			res.FailedRanks, res.RequeuedTasks)
	}
	if res.JoinedRanks > 0 || res.LeftRanks > 0 || res.StolenTasks > 0 {
		fmt.Printf("elastic membership: %d joined, %d left, %d tasks stolen\n",
			res.JoinedRanks, res.LeftRanks, res.StolenTasks)
	}
	fmt.Printf("%.2e FLOPs (%.1fM active pixel visits) in %s => %.2f GFLOP/s\n",
		flops.Total(res.Visits), float64(res.Visits)/1e6, elapsed.Round(time.Millisecond),
		flops.Rate(res.Visits, elapsed.Seconds())/1e9)

	if len(truth) > 0 {
		fmt.Println(accuracySummary(truth, res.Catalog, sv.Config.PixScale))
	}

	if *queryAddr != "" {
		fmt.Println("fit complete; still serving catalog queries (Ctrl-C to exit)")
		waitForSignal()
	}
}

// serveCatalog starts the hardened HTTP query layer over a catalog store,
// returning the bound address and a closer. The closer drains in-flight
// queries gracefully (bounded by a short deadline) before closing, so a
// Ctrl-C during a response never truncates it mid-body.
func serveCatalog(store *celeste.CatalogStore, addr string) (stop func(), bound string, err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := celeste.NewCatalogServer(store).HTTPServer()
	go srv.Serve(l)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}, l.Addr().String(), nil
}

// supConfig carries the flag values the supervised-coordinator parent needs.
type supConfig struct {
	ListenAddr      string // -serve address ("" with -spawn)
	Spawn           int
	SpawnSet        bool
	Procs           int
	Sky, Out        string
	Threads         int
	PatchThreads    int
	Rounds, MaxIter int
	Seed            uint64
	Checkpoint      string
	CkEvery         int
	MaxRestarts     int
	Rejoin          int
	RejoinWindow    time.Duration
}

// runSupervised is the coordinator-failover loop. The parent owns the
// listening socket and forks the actual coordinator as a child inheriting it
// on fd 3, so the address survives a crash: worker dials issued while no
// child is alive queue in the socket backlog. A child that dies to a signal
// (SIGKILL, OOM, panic-by-signal) is restarted with -resume against the
// checkpoint; a clean non-zero exit is a configuration error that would only
// repeat, so it is permanent. Workers are forked once, with a rejoin budget,
// and re-enroll with each new incarnation on their own — the run-hash
// handshake proves every incarnation is fitting the same run.
func runSupervised(sc supConfig) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	listenAddr := sc.ListenAddr
	procs := sc.Procs
	if sc.SpawnSet {
		listenAddr = "127.0.0.1:0"
		procs = sc.Spawn
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	defer l.Close()
	lf, err := l.(*net.TCPListener).File()
	if err != nil {
		return err
	}
	defer lf.Close()

	childArgs := []string{
		"-serve-fd", "3",
		"-sky", sc.Sky, "-out", sc.Out,
		"-threads", strconv.Itoa(sc.Threads),
		"-patch-threads", strconv.Itoa(sc.PatchThreads),
		"-procs", strconv.Itoa(procs),
		"-rounds", strconv.Itoa(sc.Rounds),
		"-maxiter", strconv.Itoa(sc.MaxIter),
		"-seed", strconv.FormatUint(sc.Seed, 10),
		"-checkpoint", sc.Checkpoint,
		"-checkpoint-every", strconv.Itoa(sc.CkEvery),
		"-resume",
	}

	var spawned []*exec.Cmd
	if sc.SpawnSet {
		rejoinBudget := sc.Rejoin
		if rejoinBudget == 0 {
			rejoinBudget = 1 << 10
		}
		window := sc.RejoinWindow
		if window == 0 {
			window = 2 * time.Minute
		}
		spawned, err = spawnWorkers(l.Addr().String(), sc.Spawn, sc.Sky, sc.Threads, sc.PatchThreads, false,
			"-rejoin", strconv.Itoa(rejoinBudget), "-rejoin-window", window.String())
		if err != nil {
			return err
		}
	}
	fmt.Printf("supervising coordinator on %s (up to %d restarts)\n", l.Addr(), sc.MaxRestarts)

	err = celeste.Supervise(func(int) error {
		cmd := exec.Command(exe, childArgs...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{lf}
		if err := cmd.Start(); err != nil {
			return err
		}
		return cmd.Wait()
	}, celeste.SuperviseOptions{
		MaxRestarts: sc.MaxRestarts,
		Permanent: func(err error) bool {
			// Only a signal death (ExitCode -1) is worth a restart; a clean
			// non-zero exit already printed its reason and would only repeat.
			var ee *exec.ExitError
			return !(errors.As(err, &ee) && ee.ExitCode() == -1)
		},
		OnRestart: func(r int, err error) {
			fmt.Printf("supervise: coordinator died (%v); restart %d resumes from %s\n",
				err, r, sc.Checkpoint)
		},
	})
	for _, cmd := range spawned {
		if err != nil {
			cmd.Process.Kill()
		}
		if werr := cmd.Wait(); werr != nil && err == nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", cmd.Process.Pid, werr)
		}
	}
	return err
}

// waitForSignal blocks until SIGINT or SIGTERM.
func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// catalogBounds computes the footprint of a loaded catalog, padded so every
// position is interior and degenerate (single-point) extents stay valid.
func catalogBounds(entries []model.CatalogEntry) geom.Box {
	if len(entries) == 0 {
		return geom.NewBox(0, 0, 1, 1)
	}
	b := geom.Box{
		MinRA: entries[0].Pos.RA, MinDec: entries[0].Pos.Dec,
		MaxRA: entries[0].Pos.RA, MaxDec: entries[0].Pos.Dec,
	}
	for i := range entries {
		p := entries[i].Pos
		b.MinRA = math.Min(b.MinRA, p.RA)
		b.MinDec = math.Min(b.MinDec, p.Dec)
		b.MaxRA = math.Max(b.MaxRA, p.RA)
		b.MaxDec = math.Max(b.MaxDec, p.Dec)
	}
	return b.Expand(1e-3)
}

// accuracySummary scores the fitted catalog against ground truth, pairing
// entries by index. The |Δmag| mean divides by the number of pairs that
// actually contributed (both fluxes positive — magnitudes are undefined
// otherwise), not the number of position pairs: dividing by the larger
// count would bias the reported photometric error low whenever a flux
// collapsed to zero, which is exactly when the fit is worst.
func accuracySummary(truth, catalog []model.CatalogEntry, pixScale float64) string {
	var pos, mag float64
	var n, nMag int
	for i := range truth {
		if i >= len(catalog) {
			break
		}
		pos += geom.Dist(truth[i].Pos, catalog[i].Pos) / pixScale
		n++
		tf, ef := truth[i].Flux[model.RefBand], catalog[i].Flux[model.RefBand]
		if tf > 0 && ef > 0 {
			mag += math.Abs(2.5 * math.Log10(ef/tf))
			nMag++
		}
	}
	if n == 0 {
		return "vs truth: no overlapping entries to score"
	}
	s := fmt.Sprintf("vs truth: mean position error %.3f px", pos/float64(n))
	if nMag > 0 {
		s += fmt.Sprintf(", mean |Δmag| %.3f (%d of %d pairs with measurable flux)",
			mag/float64(nMag), nMag, n)
	} else {
		s += ", |Δmag| unavailable (no pair has both fluxes positive)"
	}
	return s
}

// reapJoiner deterministically reaps the churn-add worker. If the timer is
// stopped before firing, no child was (or will be) spawned. Otherwise the
// callback is running or ran — even if it was spawned concurrently with run
// completion — and will deliver exactly one value, so a blocking receive
// cannot hang and cannot miss the child the way a select/default drain did.
func reapJoiner(timer *time.Timer, joiner <-chan *exec.Cmd) {
	if timer.Stop() {
		return
	}
	if cmd := <-joiner; cmd != nil {
		cmd.Wait()
	}
}

// spawnWorkers forks n copies of this binary in -worker mode against addr.
// Any extra arguments are appended to each worker's command line.
func spawnWorkers(addr string, n int, sky string, threads, patchThreads int, elastic bool, extra ...string) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-worker", addr,
			"-sky", sky,
			"-threads", strconv.Itoa(threads),
			"-patch-threads", strconv.Itoa(patchThreads)}
		if elastic {
			args = append(args, "-elastic")
		}
		args = append(args, extra...)
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// countDone tallies set bits of a completion bitmap.
func countDone(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

// reassemble rebuilds a Survey value around frames loaded from disk,
// recovering the configuration geometry from the frames themselves.
func reassemble(images []*survey.Image, truth []model.CatalogEntry) *survey.Survey {
	sv := &survey.Survey{Images: images, Truth: truth}
	if len(images) > 0 {
		fp := images[0].Footprint()
		for _, im := range images[1:] {
			f := im.Footprint()
			fp.MinRA = math.Min(fp.MinRA, f.MinRA)
			fp.MinDec = math.Min(fp.MinDec, f.MinDec)
			fp.MaxRA = math.Max(fp.MaxRA, f.MaxRA)
			fp.MaxDec = math.Max(fp.MaxDec, f.MaxDec)
		}
		sv.Config.Region = fp
		sv.Config.PixScale = images[0].WCS.PixScale()
		sv.Config.FieldW = images[0].W
		sv.Config.FieldH = images[0].H
	}
	return sv
}
