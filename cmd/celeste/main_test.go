package main

import (
	"fmt"
	"math"
	"os/exec"
	"strings"
	"testing"
	"time"

	"celeste/internal/geom"
	"celeste/internal/model"
)

// TestValidateFlags walks the flag-combination matrix: every contradictory
// combination is refused with an error naming the offending flags, and every
// sensible combination passes.
func TestValidateFlags(t *testing.T) {
	ok := flagConfig{Procs: 4, Threads: 8}
	cases := []struct {
		name string
		fc   flagConfig
		want string // "" means valid
	}{
		{"default run", ok, ""},
		{"plain serve", flagConfig{Serve: ":7021", Procs: 4, Threads: 8}, ""},
		{"plain worker", flagConfig{Worker: "host:7021", Procs: 4, Threads: 8}, ""},
		{"plain spawn", flagConfig{Spawn: 4, SpawnSet: true, Procs: 4, Threads: 8}, ""},
		{"spawn with checkpoint", flagConfig{Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, ""},
		{"serve with resume", flagConfig{Serve: ":7021", Checkpoint: "run.celk", Resume: true, Procs: 4, Threads: 8}, ""},
		{"elastic worker", flagConfig{Worker: "host:7021", Elastic: true, Procs: 4, Threads: 8}, ""},
		{"spawn with churn", flagConfig{Spawn: 4, SpawnSet: true, ChurnKill: 1, ChurnAdd: 1, Procs: 4, Threads: 8}, ""},
		{"fit with query", flagConfig{Query: ":8080", Procs: 4, Threads: 8}, ""},
		{"spawn with query", flagConfig{Spawn: 2, SpawnSet: true, Query: ":8080", Procs: 4, Threads: 8}, ""},
		{"query a catalog file", flagConfig{Query: ":8080", Load: "catalog.jsonl", Procs: 4, Threads: 8}, ""},
		{"supervised spawn", flagConfig{Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, ""},
		{"supervised serve", flagConfig{Supervise: true, Serve: ":7021", Checkpoint: "run.celk", Procs: 4, Threads: 8}, ""},
		{"supervised spawn with rejoin knobs", flagConfig{Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Rejoin: 64, RejoinWindow: time.Minute, Procs: 4, Threads: 8}, ""},
		{"coordinator child", flagConfig{ServeFD: 3, Checkpoint: "run.celk", Resume: true, Procs: 4, Threads: 8}, ""},
		{"worker with rejoin", flagConfig{Worker: "host:7021", Rejoin: 8, RejoinWindow: time.Minute, Procs: 4, Threads: 8}, ""},
		{"chaos spawn", flagConfig{Spawn: 2, SpawnSet: true, ChaosSeed: 7, ChaosMean: 4096, Procs: 4, Threads: 8}, ""},

		{"spawn zero", flagConfig{Spawn: 0, SpawnSet: true, Procs: 4, Threads: 8}, "-spawn"},
		{"spawn negative", flagConfig{Spawn: -3, SpawnSet: true, Procs: 4, Threads: 8}, "-spawn"},
		{"worker and serve", flagConfig{Worker: "a:1", Serve: ":2", Procs: 4, Threads: 8}, "mutually exclusive"},
		{"worker and spawn", flagConfig{Worker: "a:1", Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "mutually exclusive"},
		{"worker with checkpoint", flagConfig{Worker: "a:1", Checkpoint: "run.celk", Procs: 4, Threads: 8}, "coordinator owns checkpointing"},
		{"worker with resume", flagConfig{Worker: "a:1", Resume: true, Procs: 4, Threads: 8}, "coordinator owns checkpoint state"},
		{"resume without checkpoint", flagConfig{Resume: true, Procs: 4, Threads: 8}, "-resume requires -checkpoint"},
		{"serve and spawn", flagConfig{Serve: ":2", Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "mutually exclusive"},
		{"zero procs", flagConfig{Procs: 0, Threads: 8}, "-procs"},
		{"zero threads", flagConfig{Procs: 4, Threads: 0}, "-threads"},
		{"elastic without worker", flagConfig{Elastic: true, Procs: 4, Threads: 8}, "-elastic"},
		{"churn without spawn", flagConfig{ChurnKill: 1, Procs: 4, Threads: 8}, "require -spawn"},
		{"churn add without spawn", flagConfig{ChurnAdd: 1, Procs: 4, Threads: 8}, "require -spawn"},
		{"negative churn", flagConfig{Spawn: 2, SpawnSet: true, ChurnKill: -1, Procs: 4, Threads: 8}, "non-negative"},
		{"churn kill of sole worker", flagConfig{Spawn: 1, SpawnSet: true, ChurnKill: 1, Procs: 4, Threads: 8}, "at least 2"},
		{"load without query", flagConfig{Load: "catalog.jsonl", Procs: 4, Threads: 8}, "-load requires -query"},
		{"load with worker", flagConfig{Query: ":8080", Load: "c.jsonl", Worker: "a:1", Procs: 4, Threads: 8}, "-load"},
		{"load with serve", flagConfig{Query: ":8080", Load: "c.jsonl", Serve: ":2", Procs: 4, Threads: 8}, "-load"},
		{"load with spawn", flagConfig{Query: ":8080", Load: "c.jsonl", Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "-load"},
		{"load with checkpoint", flagConfig{Query: ":8080", Load: "c.jsonl", Checkpoint: "run.celk", Procs: 4, Threads: 8}, "-load"},
		{"load with resume", flagConfig{Query: ":8080", Load: "c.jsonl", Checkpoint: "run.celk", Resume: true, Procs: 4, Threads: 8}, "-load"},
		{"query on a worker", flagConfig{Query: ":8080", Worker: "a:1", Procs: 4, Threads: 8}, "-query"},
		{"supervise without checkpoint", flagConfig{Supervise: true, Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "-supervise requires -checkpoint"},
		{"supervise without serve or spawn", flagConfig{Supervise: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, "-supervise requires -serve or -spawn"},
		{"supervise on a worker", flagConfig{Supervise: true, Worker: "a:1", Checkpoint: "run.celk", Procs: 4, Threads: 8}, "coordinator owns checkpointing"},
		{"supervise with query", flagConfig{Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Query: ":8080", Procs: 4, Threads: 8}, "-supervise cannot host -query"},
		{"supervise with churn", flagConfig{Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", ChurnKill: 1, Procs: 4, Threads: 8}, "churn"},
		{"serve-fd with serve", flagConfig{ServeFD: 3, Serve: ":7021", Procs: 4, Threads: 8}, "-serve-fd is internal"},
		{"serve-fd with supervise", flagConfig{ServeFD: 3, Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, "-serve-fd is internal"},
		{"negative rejoin", flagConfig{Worker: "a:1", Rejoin: -1, Procs: 4, Threads: 8}, "-rejoin"},
		{"negative rejoin window", flagConfig{Worker: "a:1", RejoinWindow: -1, Procs: 4, Threads: 8}, "-rejoin-window"},
		{"rejoin without worker", flagConfig{Rejoin: 3, Procs: 4, Threads: 8}, "-rejoin"},
		{"rejoin window on plain spawn", flagConfig{Spawn: 2, SpawnSet: true, RejoinWindow: time.Minute, Procs: 4, Threads: 8}, "-rejoin"},
		{"chaos without spawn", flagConfig{ChaosSeed: 7, Procs: 4, Threads: 8}, "-chaos-seed requires -spawn"},
		{"chaos with supervise", flagConfig{ChaosSeed: 7, Supervise: true, Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, "-chaos-seed does not combine"},
		{"negative chaos mean", flagConfig{Spawn: 2, SpawnSet: true, ChaosSeed: 7, ChaosMean: -1, Procs: 4, Threads: 8}, "-chaos-mean"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.fc)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpectedly refused: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want an error mentioning %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestAccuracySummary pins the truth-comparison report's denominators: the
// |Δmag| mean divides by the pairs that contributed a magnitude (both fluxes
// positive), not by all position pairs, and an empty catalog reports cleanly
// instead of printing NaN.
func TestAccuracySummary(t *testing.T) {
	const pixScale = 1e-3
	entry := func(ra float64, flux float64) model.CatalogEntry {
		var e model.CatalogEntry
		e.Pos = geom.Pt2{RA: ra, Dec: 0}
		e.Flux[model.RefBand] = flux
		return e
	}

	t.Run("empty catalog has no NaN", func(t *testing.T) {
		got := accuracySummary([]model.CatalogEntry{entry(0, 1)}, nil, pixScale)
		if strings.Contains(got, "NaN") {
			t.Fatalf("summary prints NaN: %q", got)
		}
		if !strings.Contains(got, "no overlapping entries") {
			t.Fatalf("summary %q does not flag the empty overlap", got)
		}
	})

	t.Run("mag denominator counts only measurable pairs", func(t *testing.T) {
		// Two pairs: one with both fluxes positive (|Δmag| = 2.5·log10(2)),
		// one with a collapsed estimate (flux 0, contributes no magnitude).
		// Pre-fix the sum was divided by 2, halving the reported error.
		truth := []model.CatalogEntry{entry(0, 10), entry(1, 10)}
		catalog := []model.CatalogEntry{entry(0, 20), entry(1, 0)}
		got := accuracySummary(truth, catalog, pixScale)
		want := fmt.Sprintf("%.3f", 2.5*math.Log10(2))
		if !strings.Contains(got, "mean |Δmag| "+want) {
			t.Errorf("summary %q does not report |Δmag| %s over the 1 measurable pair", got, want)
		}
		if !strings.Contains(got, "1 of 2 pairs") {
			t.Errorf("summary %q does not disclose the pair counts", got)
		}
	})

	t.Run("no measurable pair", func(t *testing.T) {
		got := accuracySummary([]model.CatalogEntry{entry(0, 10)},
			[]model.CatalogEntry{entry(0, 0)}, pixScale)
		if strings.Contains(got, "NaN") {
			t.Fatalf("summary prints NaN: %q", got)
		}
		if !strings.Contains(got, "|Δmag| unavailable") {
			t.Errorf("summary %q does not flag the missing magnitudes", got)
		}
	})
}

// TestReapJoinerRace: the churn-add reaper must not miss a joiner spawned
// concurrently with run completion. Pre-fix the deferred drain used
// select/default, so a callback still mid-spawn when the run finished left
// the child unreaped; the fixed reaper observes the fired timer and blocks
// for the callback's value.
func TestReapJoinerRace(t *testing.T) {
	joiner := make(chan *exec.Cmd, 1)
	fired := make(chan struct{})
	timer := time.AfterFunc(time.Millisecond, func() {
		close(fired)
		time.Sleep(20 * time.Millisecond) // the spawn is still in progress...
		joiner <- nil                     // ...and lands after reap began
	})
	<-fired
	done := make(chan struct{})
	go func() {
		reapJoiner(timer, joiner)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reapJoiner hung on a fired timer")
	}
	select {
	case <-joiner:
		t.Fatal("reapJoiner returned without draining the joiner value")
	default:
	}
}

// TestReapJoinerUnfiredTimer: a run that finishes before the churn delay
// stops the timer and returns immediately — no value will ever arrive.
func TestReapJoinerUnfiredTimer(t *testing.T) {
	joiner := make(chan *exec.Cmd, 1)
	timer := time.AfterFunc(time.Hour, func() { joiner <- nil })
	done := make(chan struct{})
	go func() {
		reapJoiner(timer, joiner)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reapJoiner blocked on a timer that never fired")
	}
}
