package main

import (
	"strings"
	"testing"
)

// TestValidateFlags walks the flag-combination matrix: every contradictory
// combination is refused with an error naming the offending flags, and every
// sensible combination passes.
func TestValidateFlags(t *testing.T) {
	ok := flagConfig{Procs: 4, Threads: 8}
	cases := []struct {
		name string
		fc   flagConfig
		want string // "" means valid
	}{
		{"default run", ok, ""},
		{"plain serve", flagConfig{Serve: ":7021", Procs: 4, Threads: 8}, ""},
		{"plain worker", flagConfig{Worker: "host:7021", Procs: 4, Threads: 8}, ""},
		{"plain spawn", flagConfig{Spawn: 4, SpawnSet: true, Procs: 4, Threads: 8}, ""},
		{"spawn with checkpoint", flagConfig{Spawn: 2, SpawnSet: true, Checkpoint: "run.celk", Procs: 4, Threads: 8}, ""},
		{"serve with resume", flagConfig{Serve: ":7021", Checkpoint: "run.celk", Resume: true, Procs: 4, Threads: 8}, ""},
		{"elastic worker", flagConfig{Worker: "host:7021", Elastic: true, Procs: 4, Threads: 8}, ""},
		{"spawn with churn", flagConfig{Spawn: 4, SpawnSet: true, ChurnKill: 1, ChurnAdd: 1, Procs: 4, Threads: 8}, ""},

		{"spawn zero", flagConfig{Spawn: 0, SpawnSet: true, Procs: 4, Threads: 8}, "-spawn"},
		{"spawn negative", flagConfig{Spawn: -3, SpawnSet: true, Procs: 4, Threads: 8}, "-spawn"},
		{"worker and serve", flagConfig{Worker: "a:1", Serve: ":2", Procs: 4, Threads: 8}, "mutually exclusive"},
		{"worker and spawn", flagConfig{Worker: "a:1", Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "mutually exclusive"},
		{"worker with checkpoint", flagConfig{Worker: "a:1", Checkpoint: "run.celk", Procs: 4, Threads: 8}, "coordinator owns checkpointing"},
		{"worker with resume", flagConfig{Worker: "a:1", Resume: true, Procs: 4, Threads: 8}, "coordinator owns checkpoint state"},
		{"resume without checkpoint", flagConfig{Resume: true, Procs: 4, Threads: 8}, "-resume requires -checkpoint"},
		{"serve and spawn", flagConfig{Serve: ":2", Spawn: 2, SpawnSet: true, Procs: 4, Threads: 8}, "mutually exclusive"},
		{"zero procs", flagConfig{Procs: 0, Threads: 8}, "-procs"},
		{"zero threads", flagConfig{Procs: 4, Threads: 0}, "-threads"},
		{"elastic without worker", flagConfig{Elastic: true, Procs: 4, Threads: 8}, "-elastic"},
		{"churn without spawn", flagConfig{ChurnKill: 1, Procs: 4, Threads: 8}, "require -spawn"},
		{"churn add without spawn", flagConfig{ChurnAdd: 1, Procs: 4, Threads: 8}, "require -spawn"},
		{"negative churn", flagConfig{Spawn: 2, SpawnSet: true, ChurnKill: -1, Procs: 4, Threads: 8}, "non-negative"},
		{"churn kill of sole worker", flagConfig{Spawn: 1, SpawnSet: true, ChurnKill: 1, Procs: 4, Threads: 8}, "at least 2"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.fc)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpectedly refused: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want an error mentioning %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
