// Command skygen synthesizes a survey (images plus ground-truth and noisy
// initialization catalogs) and writes it to a directory:
//
//	skygen -out ./sky -seed 1 -side 0.05 -runs 3 -deep-runs 8 -density 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"path/filepath"

	"celeste"
	"celeste/internal/geom"
	"celeste/internal/imageio"
	"celeste/internal/model"
)

func main() {
	out := flag.String("out", "sky", "output directory")
	seed := flag.Uint64("seed", 1, "random seed")
	side := flag.Float64("side", 0.04, "region side length, degrees")
	runs := flag.Int("runs", 2, "full-coverage epochs")
	deepRuns := flag.Int("deep-runs", 6, "extra epochs over the deep half (Stripe 82 analogue)")
	density := flag.Float64("density", 3000, "sources per square degree")
	field := flag.Int("field", 192, "field size in pixels")
	fluxMean := flag.Float64("fluxmean", 20, "mean reference-band flux of the population, nmgy (0: survey default, mostly sub-threshold sources)")
	flag.Parse()

	cfg := celeste.DefaultSurveyConfig(*seed)
	cfg.Region = geom.NewBox(0, 0, *side, *side)
	cfg.DeepRegion = geom.NewBox(0, 0, *side, *side/2)
	cfg.Runs = *runs
	cfg.DeepRuns = *deepRuns
	cfg.SourceDensity = *density
	cfg.FieldW, cfg.FieldH = *field, *field
	if *fluxMean > 0 {
		cfg.Priors.R1Mean = [model.NumTypes]float64{
			math.Log(*fluxMean), math.Log(1.3 * *fluxMean)}
		cfg.Priors.R1SD = [model.NumTypes]float64{0.6, 0.6}
	}

	sv := celeste.GenerateSurvey(cfg)
	if err := imageio.WriteSurveyDir(*out, sv); err != nil {
		log.Fatal(err)
	}
	noisy := sv.NoisyCatalog(*seed + 1)
	if err := imageio.WriteCatalog(filepath.Join(*out, "init.jsonl"), noisy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\nwrote %d frames + truth.jsonl + init.jsonl to %s\n",
		sv.String(), len(sv.Images), *out)
}
