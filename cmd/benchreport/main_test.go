package main

import (
	"strings"
	"testing"
)

// Every lane recorded by main() must have a positive seed reference: a
// recorded-but-unreferenced lane regresses silently (elbo_evalvalue and
// core_process did, for two PRs), so the gate treats it as an error.
func TestAllRecordedLanesHaveSeedReferences(t *testing.T) {
	recorded := []string{"elbo_eval", "elbo_eval_multi", "elbo_eval_par", "elbo_evalgrad",
		"elbo_evalvalue", "vi_fit", "core_process", "catalog_query"}
	for _, name := range recorded {
		ref, ok := seedReference[name]
		if !ok || ref.NsPerOp <= 0 {
			t.Errorf("%s is recorded but has no positive seed reference", name)
		}
	}
}

func TestGateFailures(t *testing.T) {
	seed := map[string]entry{
		"fast": {NsPerOp: 1000},
		"slow": {NsPerOp: 1e9},
	}

	t.Run("clean", func(t *testing.T) {
		got := gateFailures(map[string]entry{
			"fast": {NsPerOp: 1100}, // within the 15% margin
			"slow": {NsPerOp: 9e8},
		}, seed, nil)
		if len(got) != 0 {
			t.Fatalf("clean run produced failures: %v", got)
		}
	})

	t.Run("regression", func(t *testing.T) {
		got := gateFailures(map[string]entry{"fast": {NsPerOp: 1200}}, seed, nil)
		if len(got) != 1 || !strings.Contains(got[0], "regresses") {
			t.Fatalf("15%%+ regression not flagged: %v", got)
		}
	})

	t.Run("unreferenced lane", func(t *testing.T) {
		got := gateFailures(map[string]entry{"newlane": {NsPerOp: 5}}, seed, nil)
		if len(got) != 1 || !strings.Contains(got[0], "no seed reference") {
			t.Fatalf("unreferenced lane not flagged: %v", got)
		}
	})

	t.Run("zero reference is unreferenced", func(t *testing.T) {
		got := gateFailures(
			map[string]entry{"zeroed": {NsPerOp: 5}},
			map[string]entry{"zeroed": {}}, nil)
		if len(got) != 1 || !strings.Contains(got[0], "no seed reference") {
			t.Fatalf("zero-NsPerOp reference not flagged: %v", got)
		}
	})

	t.Run("alloc budget", func(t *testing.T) {
		got := gateFailures(nil, seed, map[string]float64{"elbo_eval": 3})
		if len(got) != 1 || !strings.Contains(got[0], "exceeds budget") {
			t.Fatalf("alloc budget violation not flagged: %v", got)
		}
		if got := gateFailures(nil, seed, map[string]float64{"core_process": 100}); len(got) != 0 {
			t.Fatalf("within-budget allocs flagged: %v", got)
		}
	})
}

func TestSpeedupFailures(t *testing.T) {
	good := map[string]entry{
		"elbo_eval_multi": {NsPerOp: 16e6},
		"elbo_eval_par":   {NsPerOp: 4e6}, // 4x
	}
	bad := map[string]entry{
		"elbo_eval_multi": {NsPerOp: 16e6},
		"elbo_eval_par":   {NsPerOp: 15e6}, // 1.07x
	}
	if got := speedupFailures(good, 8); len(got) != 0 {
		t.Errorf("4x speedup on 8 cpus flagged: %v", got)
	}
	if got := speedupFailures(bad, 8); len(got) != 1 || !strings.Contains(got[0], "speedup") {
		t.Errorf("1.07x speedup on 8 cpus not flagged: %v", got)
	}
	// Below 8 CPUs the ratio gate is off (the regression gate still binds).
	if got := speedupFailures(bad, 4); len(got) != 0 {
		t.Errorf("speedup gated on a 4-cpu machine: %v", got)
	}
	// Missing lanes must not panic or fail.
	if got := speedupFailures(map[string]entry{}, 16); len(got) != 0 {
		t.Errorf("missing lanes flagged: %v", got)
	}
}

func TestIterBenchtime(t *testing.T) {
	cases := []struct {
		in    string
		n     int
		iters bool
	}{
		{"1x", 1, true},
		{"100x", 100, true},
		{"2s", 0, false},
		{"x", 0, false},
		{"", 0, false},
		{"1.5x", 0, false},
		{"-3x", 0, false},
	}
	for _, tc := range cases {
		n, iters := iterBenchtime(tc.in)
		if n != tc.n || iters != tc.iters {
			t.Errorf("iterBenchtime(%q) = (%d, %v), want (%d, %v)", tc.in, n, iters, tc.n, tc.iters)
		}
	}
}
