// Command benchreport runs the hot-path performance harness — steady-state
// ELBO evaluation, value-only evaluation, a whole per-source Newton fit, and
// a joint Cyclades sweep, on the same fixed-seed fixtures the root package's
// BenchmarkHotPath uses — and writes the results to BENCH_elbo.json so every
// PR leaves a comparable perf record.
//
// It is also the perf-regression gate: it exits nonzero when any benchmark's
// ns/op regresses more than 15% against the pinned seed reference, or when
// the steady-state allocation budgets (0 allocs/op for the eval and fit
// kernels, 100 for a joint sweep) are exceeded. CI runs it with
// -benchtime 1x on every PR: allocation counts are exact even for a single
// iteration, and the seed-regression margin is far wider than 1x timing
// noise.
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_elbo.json] [-benchtime 2s|1x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"celeste/internal/benchfix"
)

// entry is one benchmark's record. VisitsPerSec is the paper's throughput
// unit (active pixel visits, Section VI-B); it is 0 for benchmarks that do
// not visit pixels.
type entry struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	VisitsPerSec float64 `json:"visits_per_sec"`
	Iterations   int     `json:"iterations"`
}

type report struct {
	Timestamp  string           `json:"timestamp"`
	GoVersion  string           `json:"go_version"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	Benchmarks map[string]entry `json:"benchmarks"`

	// SeedReference pins the pre-optimization numbers for the same fixtures,
	// measured once at the seed commit (3803b06, amd64 CI container) before
	// the zero-allocation hot path landed. It is a fixed provenance record
	// for the perf trajectory, not remeasured per run.
	SeedReference map[string]entry `json:"seed_reference"`
}

// seedReference: see report.SeedReference. The vi_fit visits_per_sec is
// back-filled from the fixture's fixed workload: a full fit visits 137,500
// active pixels (invariant across PRs until culling changes the fixture),
// so the seed rate is 137500 / 1.01801081 s. The elbo_evalgrad reference is
// the PR-4 full-tier cost (5.65 ms): before the gradient tier existed, a
// gradient cost a full evaluation, so the regression gate for the new tier
// binds against that provenance.
// The elbo_evalvalue and core_process references are the PR-3 numbers from
// the EXPERIMENTS.md trajectory table — the first PR where both lanes
// existed — pinned so the gate binds for every recorded lane (they were
// recorded but ungated before).
// The catalog_query reference is the UNCACHED cost of the lane's query cycle
// (cone/box/brightest over the 20k-source fixture, caching disabled),
// measured when the lane landed: the per-snapshot cache is the optimization
// under test, so the seed is what every repeated query cost without it. The
// recorded (cached) path runs ~40 ns/op — four orders of magnitude inside
// this gate — whose binding guard is the 0 allocs/op budget below: a single
// allocation creeping into the hit path is what would sink the
// queries-per-second target, long before ns/op regressed 15% against the
// cold reference.
// The elbo_eval_multi and elbo_eval_par references are both the SERIAL cost
// of the 15-patch multi-image evaluation, measured when intra-fit parallelism
// landed: the parallel evaluator is the optimization under test, so its gate
// binds against what the same evaluation costs without the fan-out. On a
// single-core container the parallel lane sits within noise of this number
// (the fan-out overhead is microseconds against a ~16 ms evaluation); on
// multi-core hardware it only gets faster, and the NumCPU-gated speedup
// check below enforces the >=1.8x target where cores exist to show it.
var seedReference = map[string]entry{
	"elbo_eval":       {NsPerOp: 54713155, AllocsPerOp: 3689, BytesPerOp: 7546332, VisitsPerSec: 56802},
	"elbo_eval_multi": {NsPerOp: 16214498, AllocsPerOp: 0, BytesPerOp: 0, VisitsPerSec: 578187},
	"elbo_eval_par":   {NsPerOp: 16214498, AllocsPerOp: 0, BytesPerOp: 0, VisitsPerSec: 578187},
	"elbo_evalgrad":   {NsPerOp: 5654427, AllocsPerOp: 0, BytesPerOp: 0, VisitsPerSec: 552664},
	"elbo_evalvalue":  {NsPerOp: 1000959},
	"vi_fit":          {NsPerOp: 1018010810, AllocsPerOp: 74491, BytesPerOp: 151363660, VisitsPerSec: 135067},
	"core_process":    {NsPerOp: 1467191928, AllocsPerOp: 11627, BytesPerOp: 22745656},
	"catalog_query":   {NsPerOp: 414365, AllocsPerOp: 13, BytesPerOp: 90475},
}

// maxRegression is the gate: ns/op more than this factor above the seed
// reference fails the run.
const maxRegression = 1.15

// fastLaneMinIters: a lane whose steady state is near a millisecond needs
// more than a handful of iterations before ns/op means anything — a single
// cold iteration (cache and branch-predictor warm-up) reads several times the
// steady state, which would trip the 15% regression gate with pure noise at
// -benchtime 1x. When an iteration-style -benchtime asks for fewer, these
// lanes run this many iterations instead; duration-style benchtimes are left
// alone, and the allocation gates are unaffected (they use AllocsPerRun).
// The slower lanes (54 ms to 1.5 s per op) are representative at one
// iteration and stay exact-count.
var fastLaneMinIters = map[string]int{"elbo_evalvalue": 100, "catalog_query": 20000}

// iterBenchtime reports whether s is the iteration-count form of
// -benchtime ("100x") and, if so, how many iterations it asks for.
func iterBenchtime(s string) (int, bool) {
	if len(s) < 2 || s[len(s)-1] != 'x' {
		return 0, false
	}
	n := 0
	for _, c := range s[:len(s)-1] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// allocBudget is the steady-state allocs/op gate per benchmark.
var allocBudget = map[string]int64{
	"elbo_eval":       0,
	"elbo_eval_multi": 0,
	"elbo_eval_par":   0,
	"elbo_evalgrad":   0,
	"elbo_evalvalue":  0,
	"vi_fit":          0,
	"core_process":    100,
	"catalog_query":   0,
}

// minParSpeedup is the intra-fit parallelism target: with 8 patch workers on
// the 15-patch multi-image fixture, evaluation must run at least this much
// faster than the serial lane — enforced only where the hardware can show it
// (NumCPU >= 8); on smaller containers the elbo_eval_par regression gate
// against the serial seed reference still binds.
const minParSpeedup = 1.8

func main() {
	testing.Init() // register test.* flags so test.benchtime resolves
	out := flag.String("o", "BENCH_elbo.json", "output path")
	benchtime := flag.String("benchtime", "2s", "benchmark duration (go test -benchtime syntax, e.g. 2s or 1x)")
	flag.Parse()

	// testing.Benchmark honors -test.benchtime; set it explicitly so the
	// harness runs long enough for stable numbers (or exactly once for the
	// CI smoke gate).
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	// Fail on an unwritable output path now, not after minutes of
	// benchmarking.
	if f, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	} else {
		f.Close()
	}

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Benchmarks:    map[string]entry{},
		SeedReference: seedReference,
	}

	record := func(name string, f func(b *testing.B) int64) {
		if min, ok := fastLaneMinIters[name]; ok {
			if n, iters := iterBenchtime(*benchtime); iters && n < min {
				bt := flag.Lookup("test.benchtime").Value
				prev := bt.String()
				if err := bt.Set(fmt.Sprintf("%dx", min)); err == nil {
					defer bt.Set(prev)
				}
			}
		}
		var visits int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			visits = f(b)
		})
		e := entry{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if visits > 0 && r.T > 0 {
			e.VisitsPerSec = float64(visits) / r.T.Seconds()
		}
		rep.Benchmarks[name] = e
		fmt.Printf("%-18s %12.0f ns/op %6d allocs/op %12.0f visits/s\n",
			name, e.NsPerOp, e.AllocsPerOp, e.VisitsPerSec)
	}

	record("elbo_eval", benchfix.BenchElboEval)
	record("elbo_eval_multi", benchfix.BenchElboEvalMulti)
	record("elbo_eval_par", benchfix.BenchElboEvalPar)
	record("elbo_evalgrad", benchfix.BenchElboEvalGrad)
	record("elbo_evalvalue", benchfix.BenchElboEvalValue)
	record("vi_fit", benchfix.BenchViFit)
	record("core_process", benchfix.BenchCoreProcess)
	record("catalog_query", benchfix.BenchCatalogQuery)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if m, p := rep.Benchmarks["elbo_eval_multi"], rep.Benchmarks["elbo_eval_par"]; p.NsPerOp > 0 {
		fmt.Printf("intra-fit parallel speedup (8 workers, %d cpus): %.2fx\n",
			runtime.NumCPU(), m.NsPerOp/p.NsPerOp)
	}

	// Gates, checked after the report is written so a failing run still
	// leaves the numbers behind for inspection.
	failures := gateFailures(rep.Benchmarks, rep.SeedReference, benchfix.AllocGates())
	failures = append(failures, speedupFailures(rep.Benchmarks, runtime.NumCPU())...)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchreport: FAIL "+f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// gateFailures evaluates the perf gates over one run's numbers and returns a
// description per violation. Allocation budgets are gated on AllocsPerRun
// measurements (exact in steady state) rather than the benchmark-attributed
// counts, which pick up background runtime allocations at -benchtime 1x. A
// recorded lane with no (positive) seed reference is itself a gate error:
// an ungated lane can regress silently for PRs on end, which is exactly how
// elbo_evalvalue and core_process went unwatched until their references were
// pinned.
// speedupFailures enforces the intra-fit parallelism target where the
// hardware can express it: on >=8-CPU machines the 8-worker parallel lane
// must beat the serial multi-image lane by minParSpeedup. Below that core
// count a fixed ratio would gate on the scheduler, not the code.
func speedupFailures(benchmarks map[string]entry, numCPU int) []string {
	if numCPU < 8 {
		return nil
	}
	m, okM := benchmarks["elbo_eval_multi"]
	p, okP := benchmarks["elbo_eval_par"]
	if !okM || !okP || m.NsPerOp <= 0 || p.NsPerOp <= 0 {
		return nil
	}
	if speedup := m.NsPerOp / p.NsPerOp; speedup < minParSpeedup {
		return []string{fmt.Sprintf(
			"elbo_eval_par: %.2fx speedup over serial on %d cpus, want >=%.1fx",
			speedup, numCPU, minParSpeedup)}
	}
	return nil
}

func gateFailures(benchmarks, seed map[string]entry, steadyAllocs map[string]float64) []string {
	var failures []string
	for name, allocs := range steadyAllocs {
		if budget, ok := allocBudget[name]; ok && int64(allocs) > budget {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f steady-state allocs/op exceeds budget %d", name, allocs, budget))
		}
	}
	for name, e := range benchmarks {
		ref, ok := seed[name]
		if !ok || ref.NsPerOp <= 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: recorded but has no seed reference — pin one so the regression gate binds", name))
			continue
		}
		if e.NsPerOp > ref.NsPerOp*maxRegression {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op regresses >%.0f%% vs seed reference %.0f ns/op",
				name, e.NsPerOp, 100*(maxRegression-1), ref.NsPerOp))
		}
	}
	sort.Strings(failures)
	return failures
}
