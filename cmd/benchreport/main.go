// Command benchreport runs the hot-path performance harness — steady-state
// ELBO evaluation, value-only evaluation, a whole per-source Newton fit, and
// a joint Cyclades sweep, on the same fixed-seed fixtures the root package's
// BenchmarkHotPath uses — and writes the results to BENCH_elbo.json so every
// PR leaves a comparable perf record.
//
// It is also the perf-regression gate: it exits nonzero when any benchmark's
// ns/op regresses more than 15% against the pinned seed reference, or when
// the steady-state allocation budgets (0 allocs/op for the eval and fit
// kernels, 100 for a joint sweep) are exceeded. CI runs it with
// -benchtime 1x on every PR: allocation counts are exact even for a single
// iteration, and the seed-regression margin is far wider than 1x timing
// noise.
//
// Usage:
//
//	go run ./cmd/benchreport [-o BENCH_elbo.json] [-benchtime 2s|1x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"celeste/internal/benchfix"
)

// entry is one benchmark's record. VisitsPerSec is the paper's throughput
// unit (active pixel visits, Section VI-B); it is 0 for benchmarks that do
// not visit pixels.
type entry struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	VisitsPerSec float64 `json:"visits_per_sec"`
	Iterations   int     `json:"iterations"`
}

type report struct {
	Timestamp  string           `json:"timestamp"`
	GoVersion  string           `json:"go_version"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	Benchmarks map[string]entry `json:"benchmarks"`

	// SeedReference pins the pre-optimization numbers for the same fixtures,
	// measured once at the seed commit (3803b06, amd64 CI container) before
	// the zero-allocation hot path landed. It is a fixed provenance record
	// for the perf trajectory, not remeasured per run.
	SeedReference map[string]entry `json:"seed_reference"`
}

// seedReference: see report.SeedReference. The vi_fit visits_per_sec is
// back-filled from the fixture's fixed workload: a full fit visits 137,500
// active pixels (invariant across PRs until culling changes the fixture),
// so the seed rate is 137500 / 1.01801081 s. The elbo_evalgrad reference is
// the PR-4 full-tier cost (5.65 ms): before the gradient tier existed, a
// gradient cost a full evaluation, so the regression gate for the new tier
// binds against that provenance.
var seedReference = map[string]entry{
	"elbo_eval":     {NsPerOp: 54713155, AllocsPerOp: 3689, BytesPerOp: 7546332, VisitsPerSec: 56802},
	"elbo_evalgrad": {NsPerOp: 5654427, AllocsPerOp: 0, BytesPerOp: 0, VisitsPerSec: 552664},
	"vi_fit":        {NsPerOp: 1018010810, AllocsPerOp: 74491, BytesPerOp: 151363660, VisitsPerSec: 135067},
}

// maxRegression is the gate: ns/op more than this factor above the seed
// reference fails the run.
const maxRegression = 1.15

// allocBudget is the steady-state allocs/op gate per benchmark.
var allocBudget = map[string]int64{
	"elbo_eval":      0,
	"elbo_evalgrad":  0,
	"elbo_evalvalue": 0,
	"vi_fit":         0,
	"core_process":   100,
}

func main() {
	testing.Init() // register test.* flags so test.benchtime resolves
	out := flag.String("o", "BENCH_elbo.json", "output path")
	benchtime := flag.String("benchtime", "2s", "benchmark duration (go test -benchtime syntax, e.g. 2s or 1x)")
	flag.Parse()

	// testing.Benchmark honors -test.benchtime; set it explicitly so the
	// harness runs long enough for stable numbers (or exactly once for the
	// CI smoke gate).
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	// Fail on an unwritable output path now, not after minutes of
	// benchmarking.
	if f, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	} else {
		f.Close()
	}

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Benchmarks:    map[string]entry{},
		SeedReference: seedReference,
	}

	record := func(name string, f func(b *testing.B) int64) {
		var visits int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			visits = f(b)
		})
		e := entry{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if visits > 0 && r.T > 0 {
			e.VisitsPerSec = float64(visits) / r.T.Seconds()
		}
		rep.Benchmarks[name] = e
		fmt.Printf("%-18s %12.0f ns/op %6d allocs/op %12.0f visits/s\n",
			name, e.NsPerOp, e.AllocsPerOp, e.VisitsPerSec)
	}

	record("elbo_eval", benchfix.BenchElboEval)
	record("elbo_evalgrad", benchfix.BenchElboEvalGrad)
	record("elbo_evalvalue", benchfix.BenchElboEvalValue)
	record("vi_fit", benchfix.BenchViFit)
	record("core_process", benchfix.BenchCoreProcess)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	// Gates, checked after the report is written so a failing run still
	// leaves the numbers behind for inspection. Allocation budgets are
	// gated on AllocsPerRun measurements (exact in steady state) rather
	// than the benchmark-attributed counts, which pick up background
	// runtime allocations at -benchtime 1x.
	failed := false
	for name, allocs := range benchfix.AllocGates() {
		if budget, ok := allocBudget[name]; ok && int64(allocs) > budget {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL %s: %.0f steady-state allocs/op exceeds budget %d\n",
				name, allocs, budget)
			failed = true
		}
	}
	for name, e := range rep.Benchmarks {
		seed, ok := rep.SeedReference[name]
		if !ok || seed.NsPerOp <= 0 {
			continue
		}
		if e.NsPerOp > seed.NsPerOp*maxRegression {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL %s: %.0f ns/op regresses >%.0f%% vs seed reference %.0f ns/op\n",
				name, e.NsPerOp, 100*(maxRegression-1), seed.NsPerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
