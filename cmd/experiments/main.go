// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded outputs):
//
//	experiments table1    — Table I sustained FLOP rates (9600 nodes)
//	experiments table2    — Table II Stripe 82 accuracy, Photo vs Celeste
//	experiments fig4      — Figure 4 weak scaling components
//	experiments fig5      — Figure 5 strong scaling components
//	experiments perthread — Section VII-A per-thread runtime breakdown
//	experiments pernode   — Section VII-B processes x threads sweep
//	experiments peak      — Section VII-D peak performance run
//	experiments newton    — Section IV-D Newton vs L-BFGS ablation
//
// Flags scale the hands-on experiments (table2, perthread, newton) so they
// run in seconds by default and minutes at full fidelity.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"celeste"
	"celeste/internal/cluster"
	"celeste/internal/elbo"
	"celeste/internal/flops"
	"celeste/internal/geom"
	"celeste/internal/imageio"
	"celeste/internal/model"
	"celeste/internal/psf"
	"celeste/internal/rng"
	"celeste/internal/survey"
	"celeste/internal/vi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 1, "experiment size multiplier (table2/newton)")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "table1":
		table1()
	case "table2":
		table2(*seed, *scale)
	case "fig4":
		fig4(*seed)
	case "fig5":
		fig5(*seed)
	case "perthread":
		perthread(*seed)
	case "pernode":
		pernode()
	case "peak":
		peak()
	case "newton":
		newton(*seed)
	case "failover":
		failover(*seed)
	case "all":
		table1()
		fig4(*seed)
		fig5(*seed)
		pernode()
		peak()
		perthread(*seed)
		newton(*seed)
		failover(*seed)
		table2(*seed, *scale)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <table1|table2|fig4|fig5|perthread|pernode|peak|newton|failover|all> [-seed N] [-scale X]")
	os.Exit(2)
}

func table1() {
	fmt.Println("== Table I: sustained FLOP rate (9600 nodes, 326,400 tasks) ==")
	m, w := cluster.Table1Config()
	r := cluster.Simulate(m, w, false)
	fmt.Printf("%-22s %12s %12s\n", "", "paper TFLOP/s", "ours TFLOP/s")
	fmt.Printf("%-22s %12.2f %12.2f\n", "task processing", 693.69, r.TFLOPsTaskProcessing)
	fmt.Printf("%-22s %12.2f %12.2f\n", "+load imbalance", 413.19, r.TFLOPsPlusImbalance)
	fmt.Printf("%-22s %12.2f %12.2f\n", "+image loading", 211.94, r.TFLOPsPlusLoading)
	fmt.Printf("makespan %.0f s (paper: ~420 s)\n\n", r.Makespan)
}

func table2(seed uint64, scale float64) {
	fmt.Println("== Table II: Stripe 82 validation, Photo vs Celeste ==")
	start := time.Now()

	// A deep strip imaged by many runs; validation compares single-epoch
	// analyses against exactly known ground truth (our synthetic analogue of
	// the coadd-derived truth; see DESIGN.md substitutions).
	cfg := celeste.DefaultSurveyConfig(seed)
	side := 0.03 * math.Sqrt(scale)
	cfg.Region = geom.NewBox(0, 0, side, side)
	cfg.DeepRegion = cfg.Region
	cfg.Runs = 1
	cfg.DeepRuns = 0
	cfg.FieldW, cfg.FieldH = 160, 160
	cfg.SourceDensity = 40000
	// A population bright and compact enough that the heuristic baseline
	// detects most sources, as in the paper's validation region (galaxies
	// near the surface-brightness limit would all be "missed" by Photo,
	// which tells us nothing about estimation accuracy).
	cfg.Priors.R1Mean = [model.NumTypes]float64{math.Log(15), math.Log(25)}
	cfg.Priors.R1SD = [model.NumTypes]float64{0.5, 0.5}
	cfg.Priors.GalScaleLogMean = math.Log(1.2 / 3600)
	cfg.Priors.GalScaleLogSD = 0.35
	sv := celeste.GenerateSurvey(cfg)
	fmt.Printf("synthetic Stripe 82 strip: %d sources, %d frames\n",
		len(sv.Truth), len(sv.Images))

	// Photo: detection + measurement on the single run's imagery.
	photoCat := celeste.RunPhoto(sv.Images)

	// Celeste: joint VI on the same imagery, initialized from the noisy
	// preexisting catalog.
	init := sv.NoisyCatalog(seed + 1)
	res := celeste.Infer(sv, init, celeste.InferConfig{
		Threads: 8, Rounds: 2, MaxIter: 30, Seed: seed,
	})

	rows := celeste.CompareToTruth(sv, photoCat, res.Catalog)
	fmt.Print(celeste.FormatComparison(rows))
	fmt.Printf("(%d fits, %.1fM active pixel visits, %s)\n\n",
		res.Fits, float64(res.Visits)/1e6, time.Since(start).Round(time.Second))
}

func fig4(seed uint64) {
	fmt.Println("== Figure 4: weak scaling (68 tasks/node) ==")
	nodes := []int{1, 2, 8, 32, 128, 512, 2048, 8192}
	results := celeste.WeakScaling(nodes, seed)
	fmt.Printf("%6s %10s %10s %10s %8s %8s\n",
		"nodes", "task proc", "img load", "imbalance", "other", "total")
	for i, r := range results {
		c := r.Components
		fmt.Printf("%6d %10.1f %10.1f %10.1f %8.1f %8.1f\n",
			nodes[i], c.TaskProcessing, c.ImageLoading, c.LoadImbalance,
			c.Other, c.Total())
	}
	ratio := results[len(results)-1].Components.Total() / results[0].Components.Total()
	fmt.Printf("runtime growth 1 -> 8192 nodes: %.2fx (paper: 1.9x)\n\n", ratio)
}

func fig5(seed uint64) {
	fmt.Println("== Figure 5: strong scaling (557,056 tasks) ==")
	nodes := []int{2048, 4096, 8192}
	results := celeste.StrongScaling(nodes, seed)
	fmt.Printf("%6s %10s %10s %10s %8s %8s\n",
		"nodes", "task proc", "img load", "imbalance", "other", "total")
	for i, r := range results {
		c := r.Components
		fmt.Printf("%6d %10.1f %10.1f %10.1f %8.1f %8.1f\n",
			nodes[i], c.TaskProcessing, c.ImageLoading, c.LoadImbalance,
			c.Other, c.Total())
	}
	t := func(i int) float64 { return results[i].Components.Total() }
	fmt.Printf("efficiency 2k->4k: %.0f%% (paper: 65%%)   2k->8k: %.0f%% (paper: 50%%)\n\n",
		100*t(0)/(2*t(1)), 100*t(0)/(4*t(2)))
}

func perthread(seed uint64) {
	fmt.Println("== Section VII-A: per-thread runtime breakdown ==")
	// Fit a realistic source and attribute wall time.
	r := rng.New(seed)
	priors := model.DefaultPriors()
	pixScale := 1.1e-4
	truth := model.CatalogEntry{
		Pos: geom.Pt2{RA: 0.003, Dec: 0.003}, ProbGal: 1,
		Flux:       [model.NumBands]float64{8, 12, 16, 18, 20},
		GalDevFrac: 0.4, GalAxisRatio: 0.7, GalAngle: 0.9, GalScale: 2 * pixScale,
	}
	var images []*survey.Image
	size := 56
	for ep := 0; ep < 2; ep++ {
		for b := 0; b < model.NumBands; b++ {
			w := geom.NewSimpleWCS(truth.Pos.RA-float64(size)/2*pixScale,
				truth.Pos.Dec-float64(size)/2*pixScale, pixScale)
			p := psf.Default(1.2)
			im := &survey.Image{Band: b, W: size, H: size, WCS: w, PSF: p,
				Iota: 100, Sky: 80, Pixels: make([]float64, size*size)}
			for i := range im.Pixels {
				im.Pixels[i] = 80
			}
			model.AddExpectedCounts(im.Pixels, size, size, w, p, &truth, b, 100, 6)
			for i, lam := range im.Pixels {
				im.Pixels[i] = float64(r.Poisson(lam))
			}
			images = append(images, im)
		}
	}
	pb := elbo.NewProblem(&priors, images, truth.Pos, 12)
	res := vi.Fit(pb, model.InitialParams(&truth), vi.Options{})
	objPct := 100 * res.EvalSeconds / res.TotalSeconds
	fmt.Printf("%-44s %6s %6s\n", "component", "paper", "ours")
	fmt.Printf("%-44s %5.0f%% %5.1f%%\n",
		"objective evaluation (generated kernel code)", 67.0, objPct)
	fmt.Printf("%-44s %5.0f%% %5.1f%%\n",
		"optimizer linear algebra + runtime + other", 33.0, 100-objPct)
	fmt.Printf("fit: %d Newton iters, %d visits, %.0f ms total\n\n",
		res.Iters, res.Visits, res.TotalSeconds*1e3)
}

func pernode() {
	fmt.Println("== Section VII-B: per-node configuration sweep ==")
	m := celeste.DefaultMachine(1)
	fmt.Printf("%6s %8s %14s\n", "procs", "threads", "rel throughput")
	best, bestP, bestT := 0.0, 0, 0
	for _, procs := range []int{4, 8, 17, 34, 68} {
		for _, threads := range []int{2, 4, 8, 16} {
			if procs*threads > 272 {
				continue
			}
			v := cluster.NodeConfigThroughput(m, procs, threads)
			fmt.Printf("%6d %8d %14.1f\n", procs, threads, v)
			if v > best {
				best, bestP, bestT = v, procs, threads
			}
		}
	}
	fmt.Printf("best: %d procs x %d threads (paper: 17 x 8)\n\n", bestP, bestT)
}

func peak() {
	fmt.Println("== Section VII-D: peak performance run (9568 nodes, synchronized) ==")
	m := celeste.DefaultMachine(9568)
	m.SustainedEff = 1
	w := celeste.DefaultWorkload(9568 * 17 * 4)
	r := celeste.SimulateCluster(m, w, true)
	fmt.Printf("peak: %.2f PFLOP/s (paper: 1.54)\n", r.PeakPFLOPs)
	fmt.Println("PFLOP/s by minute:")
	for i, v := range r.FLOPRateSeries {
		fmt.Printf("  min %2d: %.3f\n", i, v)
	}
	fl := flops.Total(r.Visits)
	fmt.Printf("total: %.2e FLOPs over %.0f s\n\n", fl, r.Makespan)
}

// failover measures recovery cost as a function of checkpoint cadence: a
// run checkpointing every k tasks is crashed at a fixed task count (the
// coordinator dying mid-interval, so everything since the last durable
// checkpoint is lost), then resumed from that checkpoint and timed to
// completion. The re-executed tasks are the cadence's real price; the
// recovery-to-frontier column isolates it by subtracting the work a
// crash-free run would still have owed, using the baseline's per-task rate.
func failover(seed uint64) {
	fmt.Println("== Coordinator failover: recovery time vs checkpoint interval ==")
	cfg := celeste.DefaultSurveyConfig(seed)
	cfg.Region = celeste.SkyBox{MaxRA: 0.03, MaxDec: 0.03}
	cfg.DeepRegion = celeste.SkyBox{}
	cfg.DeepRuns = 0
	cfg.Runs = 1
	cfg.FieldW, cfg.FieldH = 128, 128
	cfg.SourceDensity = 30000
	sv := celeste.GenerateSurvey(cfg)
	init := sv.NoisyCatalog(seed + 1)
	icfg := celeste.InferConfig{TargetWork: 2e4, Rounds: 1, MaxIter: 8, Seed: 9}

	t0 := time.Now()
	base, err := celeste.InferWithOptions(sv, init, icfg, celeste.InferOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
	full := time.Since(t0)
	n := base.TasksProcessed
	avg := full / time.Duration(n)
	// Crash inside stage 0, where the expensive joint fits live (commits are
	// stage-ordered, so the first stage0 commits are all stage-0 tasks) —
	// dying in the cheap boundary stage would make every cadence look free.
	stage0 := 0
	for _, tk := range base.Tasks {
		if tk.Stage == 0 {
			stage0++
		}
	}
	crash := 6 * stage0 / 10
	if crash%2 == 0 {
		// Die mid-interval at every cadence below: a boundary-aligned crash
		// would show zero loss for every interval dividing it.
		crash++
	}
	if crash > n {
		crash = 1
	}
	fmt.Printf("baseline: %d tasks in %v (%v/task); coordinator dies at task %d\n",
		n, full.Round(time.Millisecond), avg.Round(time.Microsecond), crash)

	// One crashed run captures the durable checkpoint every cadence below
	// would have on disk at the crash (the latest commit multiple of k), so
	// every cadence resumes from identical bytes.
	ks := []int{1, 2, 4, 8, 16}
	keep := map[int]*bytes.Buffer{}
	for _, k := range ks {
		if k <= crash {
			keep[crash/k*k] = &bytes.Buffer{}
		}
	}
	done := 0
	_, err = celeste.InferWithOptions(sv, init, icfg, celeste.InferOptions{
		CheckpointEvery: 1,
		OnCheckpoint: func(ck *celeste.Checkpoint) error {
			done++
			if buf, ok := keep[done]; ok {
				if werr := imageio.WriteCheckpoint(buf, ck); werr != nil {
					return werr
				}
			}
			if done >= crash {
				return errors.New("injected coordinator crash")
			}
			return nil
		},
	})
	if !errors.Is(err, celeste.ErrRunAborted) {
		fmt.Fprintf(os.Stderr, "failover: crashed run: got %v, want abort\n", err)
		os.Exit(1)
	}

	// Resume each cadence's checkpoint to completion, repeated; the minimum
	// wall is the least-noise estimate on a shared-tenancy machine. The
	// interval-1 cadence loses nothing (its checkpoint is the crash commit
	// itself), so its wall is the measured crash-free remainder and the
	// recovery column — wall minus that reference — isolates what the
	// coarser cadences pay in re-executed work.
	const reps = 5
	resume := func(k int) time.Duration {
		ck, err := imageio.ReadCheckpoint(bytes.NewReader(keep[crash/k*k].Bytes()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "failover: interval %d: reloading checkpoint: %v\n", k, err)
			os.Exit(1)
		}
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			t1 := time.Now()
			res, err := celeste.InferWithOptions(sv, init, icfg, celeste.InferOptions{Resume: ck})
			if err != nil {
				fmt.Fprintf(os.Stderr, "failover: interval %d: resume: %v\n", k, err)
				os.Exit(1)
			}
			w := time.Since(t1)
			if res.TasksProcessed != n {
				fmt.Fprintf(os.Stderr, "failover: interval %d: resumed run reports %d tasks, want %d\n",
					k, res.TasksProcessed, n)
				os.Exit(1)
			}
			if r == 0 || w < best {
				best = w
			}
		}
		return best
	}

	ref := resume(1)
	fmt.Printf("%-10s %12s %12s %14s %20s\n",
		"interval", "ckpts kept", "re-executed", "resume wall", "recovery cost")
	fmt.Printf("%-10d %12d %12d %14v %20s\n", 1, crash, 0, ref.Round(time.Millisecond), "(reference)")
	for _, k := range ks[1:] {
		if k > crash {
			break
		}
		wall := resume(k)
		fmt.Printf("%-10d %12d %12d %14v %20v\n",
			k, crash/k, crash-crash/k*k, wall.Round(time.Millisecond),
			(wall - ref).Round(time.Millisecond))
	}
	fmt.Println()
}

func newton(seed uint64) {
	fmt.Println("== Section IV-D ablation: Newton trust region vs L-BFGS ==")
	r := rng.New(seed)
	priors := model.DefaultPriors()
	pixScale := 1.1e-4
	truth := model.CatalogEntry{
		Pos: geom.Pt2{RA: 0.003, Dec: 0.003}, ProbGal: 1,
		Flux:       [model.NumBands]float64{10, 15, 20, 23, 25},
		GalDevFrac: 0.3, GalAxisRatio: 0.6, GalAngle: 0.8, GalScale: 2 * pixScale,
	}
	var images []*survey.Image
	size := 48
	for b := 0; b < model.NumBands; b++ {
		w := geom.NewSimpleWCS(truth.Pos.RA-float64(size)/2*pixScale,
			truth.Pos.Dec-float64(size)/2*pixScale, pixScale)
		p := psf.Default(1.2)
		im := &survey.Image{Band: b, W: size, H: size, WCS: w, PSF: p,
			Iota: 100, Sky: 80, Pixels: make([]float64, size*size)}
		for i := range im.Pixels {
			im.Pixels[i] = 80
		}
		model.AddExpectedCounts(im.Pixels, size, size, w, p, &truth, b, 100, 6)
		for i, lam := range im.Pixels {
			im.Pixels[i] = float64(r.Poisson(lam))
		}
		images = append(images, im)
	}
	init := truth
	init.Pos.RA += 0.8 * pixScale
	init.Flux[model.RefBand] *= 1.3
	ip := model.InitialParams(&init)

	pbn := elbo.NewProblem(&priors, images, truth.Pos, 12)
	tn := time.Now()
	rn := vi.Fit(pbn, ip, vi.Options{GradTol: 1e-4})
	newtonSec := time.Since(tn).Seconds()

	pbl := elbo.NewProblem(&priors, images, truth.Pos, 12)
	tl := time.Now()
	// The paper observed up to 2000 L-BFGS iterations; 300 keeps this demo
	// affordable while still showing non-convergence where Newton needs tens.
	rl := vi.FitLBFGS(pbl, ip, 300)
	lbfgsSec := time.Since(tl).Seconds()

	fmt.Printf("%-18s %10s %10s %12s %10s\n", "optimizer", "iters", "ELBO", "wall (s)", "converged")
	fmt.Printf("%-18s %10d %10.1f %12.2f %10v\n", "Newton TR", rn.Iters, rn.ELBO, newtonSec, rn.Converged)
	fmt.Printf("%-18s %10d %10.1f %12.2f %10v\n", "L-BFGS", rl.Iters, rl.ELBO, lbfgsSec, rl.Converged)
	fmt.Println("(paper: Newton converges in tens of iterations; L-BFGS takes up to 2000)")
	fmt.Println()
}
