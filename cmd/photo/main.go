// Command photo runs the heuristic baseline pipeline on a survey directory,
// optionally restricted to a single run's imagery (the Table II protocol):
//
//	photo -sky ./sky -run 0 -out photo.jsonl
package main

import (
	"flag"
	"fmt"
	"log"

	"celeste"
	"celeste/internal/imageio"
	"celeste/internal/survey"
)

func main() {
	sky := flag.String("sky", "sky", "survey directory from skygen")
	out := flag.String("out", "photo.jsonl", "output catalog path")
	run := flag.Int("run", -1, "restrict to one run's imagery (-1: all runs)")
	flag.Parse()

	images, _, err := imageio.ReadSurveyDir(*sky)
	if err != nil {
		log.Fatal(err)
	}
	var use []*survey.Image
	for _, im := range images {
		if *run < 0 || im.Run == *run {
			use = append(use, im)
		}
	}
	if len(use) == 0 {
		log.Fatalf("no frames selected (run %d)", *run)
	}
	cat := celeste.RunPhoto(use)
	if err := imageio.WriteCatalog(*out, cat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected and measured %d sources from %d frames -> %s\n",
		len(cat), len(use), *out)
}
