package celeste

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"celeste/internal/geom"
	"celeste/internal/imageio"
	"celeste/internal/model"
)

// TestCatalogQueryLoadConcurrentWithFit is the catalog-as-a-service load
// test: a full inference run streams posterior updates into a CatalogStore
// while query goroutines hammer the server's cached path. It asserts
//
//   - sustained cached query throughput of at least 100k queries/sec for the
//     whole duration of the fit (the CI job runs this under -race),
//   - that the cache actually carried the load (hits dominate misses), and
//   - that a query issued after the run returns entries byte-identical to
//     the catalog file the run writes — the RCU store's final state IS the
//     output catalog, down to the JSON bytes.
func TestCatalogQueryLoadConcurrentWithFit(t *testing.T) {
	if testing.Short() {
		t.Skip("load test: full fit plus sustained query load")
	}
	cfg := DefaultSurveyConfig(23)
	cfg.Region = geom.NewBox(0, 0, 0.012, 0.012)
	cfg.DeepRegion = SkyBox{}
	cfg.DeepRuns = 0
	cfg.Runs = 1
	cfg.FieldW, cfg.FieldH = 128, 128
	cfg.SourceDensity = 25000
	cfg.Priors.R1Mean = [model.NumTypes]float64{math.Log(10), math.Log(12)}
	sv := GenerateSurvey(cfg)
	init := sv.NoisyCatalog(24)
	if len(init) < 3 {
		t.Skip("too few sources drawn")
	}

	store := NewCatalogStore(sv.Config.Region, init, CatalogOptions{})
	srv := NewCatalogServer(store)

	// The fixed cone cycle the load drives. Each published snapshot starts
	// with a cold cache, so the mix the counters see is the real one: a cold
	// execution per target per snapshot, cache hits for everything else.
	targets := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		targets = append(targets, fmt.Sprintf("/cone?ra=%.5f&dec=%.5f&r=%.4f",
			0.012*float64(i)/32, 0.012*float64((i*7)%32)/32, 0.003))
	}
	for _, tg := range targets {
		if _, status := srv.Query(tg); status != 200 {
			t.Fatalf("warming %s: status %d", tg, status)
		}
	}

	type runOut struct {
		res *InferResult
		err error
	}
	done := make(chan runOut, 1)
	start := time.Now()
	go func() {
		res, err := InferWithOptions(sv, init, InferConfig{
			Threads: 2, Processes: 2, Rounds: 1, MaxIter: 10, Seed: 23,
		}, InferOptions{Catalog: store, CatalogEvery: 1})
		done <- runOut{res, err}
	}()

	var queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, status := srv.Query(targets[i%len(targets)])
				if status != 200 || len(body) == 0 {
					t.Errorf("query under load: status %d, %d bytes", status, len(body))
					return
				}
				queries.Add(1)
			}
		}(g * 8)
	}

	out := <-done
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res

	qps := float64(queries.Load()) / elapsed.Seconds()
	t.Logf("%d queries in %s concurrent with the fit (%.0f queries/sec, store version %d)",
		queries.Load(), elapsed.Round(time.Millisecond), qps, store.Snapshot().Version())
	if qps < 100_000 {
		t.Errorf("sustained %.0f queries/sec under fit load, want >= 100000", qps)
	}
	hits, misses := srv.CacheStats()
	if hits <= misses {
		t.Errorf("cache did not carry the load: %d hits <= %d misses", hits, misses)
	}
	if v := store.Snapshot().Version(); v < 2 {
		t.Errorf("store never saw a live update (version %d)", v)
	}

	// Byte-identity with the written catalog: serve everything, compare each
	// served entry's raw JSON with its file line.
	path := filepath.Join(t.TempDir(), "catalog.jsonl")
	if err := imageio.WriteCatalog(path, res.Catalog); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != len(res.Catalog) {
		t.Fatalf("catalog file has %d lines for %d entries", len(lines), len(res.Catalog))
	}
	byID := make(map[int][]byte, len(lines))
	for _, line := range lines {
		var e struct {
			ID int `json:"ID"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		byID[e.ID] = line
	}

	body, status := srv.Query("/box?ramin=-10&decmin=-10&ramax=10&decmax=10")
	if status != 200 {
		t.Fatalf("post-run box query: status %d", status)
	}
	var resp struct {
		Version uint64            `json:"version"`
		Count   int               `json:"count"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(res.Catalog) {
		t.Fatalf("post-run query returned %d entries, want %d", resp.Count, len(res.Catalog))
	}
	for _, rawEnt := range resp.Entries {
		var e struct {
			ID int `json:"ID"`
		}
		if err := json.Unmarshal(rawEnt, &e); err != nil {
			t.Fatal(err)
		}
		line, ok := byID[e.ID]
		if !ok {
			t.Fatalf("served entry ID %d not in the catalog file", e.ID)
		}
		if !bytes.Equal(rawEnt, line) {
			t.Fatalf("served entry %d differs from the catalog file:\nserved: %s\nfile:   %s",
				e.ID, rawEnt, line)
		}
		delete(byID, e.ID)
	}
	if len(byID) != 0 {
		t.Fatalf("%d catalog file entries never served", len(byID))
	}
}
